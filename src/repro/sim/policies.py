"""Scheduling policies: how a chip/channel picks its next operation.

Each simulated resource serves one operation segment at a time from a
priority queue ordered by ``(priority(segment), enqueue seq)``.  The
policy decides the priority, whether in-service cell operations can be
suspended for reads, and whether sanitization lock pulses are deferred
out of the request critical path:

* :class:`FifoPolicy` -- strict arrival order (the open-loop model's
  implicit discipline; the agreement cross-check runs under it);
* :class:`ReadPriorityPolicy` -- host reads overtake queued background
  work: GC relocation reads/programs, erases, and lock pulses (they
  never preempt in-service work);
* :class:`SuspendPolicy` -- read priority plus erase/program suspension:
  a host read arriving at a chip mid-erase pauses the erase, runs, and
  the erase resumes with its remaining time (plus a resume overhead);
* :class:`DeferLocksPolicy` -- suspension plus *sanitization deferral*:
  pLock/bLock pulses leave the request critical path, batch per chip,
  and drain in idle windows (or, at the batch cap, as background work
  behind all host traffic).  Safety is preserved by construction and
  then *checked*: the FTL's functional lock state is applied at
  invalidation time -- before the trim request completes and therefore
  before any later read is dispatched -- so deferral only postpones the
  simulated pulse *occupancy*, never the sanitization itself.  Runs
  with ``checked=True`` have the runtime sanitizer probe every
  sanitized page for real unreadability while deferral is active,
  which is the machine-checked form of that argument.

``policy_by_name`` is the registry the CLI and experiments use.
"""

from __future__ import annotations

from repro.sim.ops import LOCK_KINDS, SUSPENDABLE_KINDS, OpKind
from repro.ssd.request import RequestOp


def is_host_read(segment) -> bool:
    """Whether a segment is a flash read serving a host *read* request.

    A READ op captured for a write or trim request is background work
    (GC relocation, lock-manager bookkeeping) and gets no priority --
    the same host-first discipline real controllers apply.
    """
    return (
        segment.kind is OpKind.READ
        and segment.request is not None
        and segment.request.op is RequestOp.READ
    )


class SchedulingPolicy:
    """Base policy: FIFO, no suspension, no deferral."""

    name = "fifo"
    #: in-service erase/program can be suspended by an arriving read.
    preemptive = False
    #: pLock/bLock pulses are deferred out of the request critical path.
    defer_locks = False
    #: extra chip time when a suspended cell op resumes (re-ramp cost).
    resume_overhead_us = 0.0
    #: reserve both stages of two-stage ops in submission order (the
    #: open-loop model's discipline, incl. head-of-line blocking); the
    #: work-conserving policies dispatch a stage only when it is ready.
    in_order = False

    def priority(self, segment) -> int:
        """Queue priority: lower runs first; ties keep arrival order."""
        return 0

    def preempts(self, segment, current) -> bool:
        """Whether an arriving segment suspends the in-service one."""
        return False

    def describe(self) -> dict[str, object]:
        return {"name": self.name}


class FifoPolicy(SchedulingPolicy):
    """Strict arrival order on every resource.

    Reproduces the open-loop occupancy model exactly under saturation
    (in-order reservation semantics) -- the agreement cross-check's
    policy.
    """

    name = "fifo"
    in_order = True


class ReadPriorityPolicy(SchedulingPolicy):
    """Host reads overtake queued background work; the rest stays FIFO.

    Background work means GC relocation reads and programs, erases, and
    lock pulses -- everything a host read should not have to wait behind
    except the op already in service.
    """

    name = "read_priority"

    def priority(self, segment) -> int:
        return 0 if is_host_read(segment) else 1


class SuspendPolicy(ReadPriorityPolicy):
    """Read priority plus erase/program suspension.

    Models the erase-suspend/program-suspend commands of modern NAND:
    an arriving read pauses a suspendable in-service cell op, runs, and
    the op resumes with its remaining duration plus
    ``resume_overhead_us``.  Lock pulses are *not* suspendable -- a
    half-applied pLock would weaken the sanitization guarantee, exactly
    the kind of interaction the paper's lock manager avoids.
    """

    name = "suspend"
    preemptive = True
    suspendable = SUSPENDABLE_KINDS

    def __init__(self, resume_overhead_us: float = 20.0) -> None:
        if resume_overhead_us < 0.0:
            raise ValueError("resume_overhead_us must be non-negative")
        self.resume_overhead_us = resume_overhead_us

    def preempts(self, segment, current) -> bool:
        return (
            is_host_read(segment)
            and segment.stage == "cell"
            and current.stage == "cell"
            and current.kind in self.suspendable
        )

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "resume_overhead_us": self.resume_overhead_us}


class DeferLocksPolicy(SuspendPolicy):
    """The full sanitization-aware policy: deferral plus suspension.

    Lock pulses accumulate per chip (up to ``max_pending``) and drain
    when the chip goes idle or when the batch cap is hit.  Drained
    pulses run at *background* priority -- behind reads and behind
    programs/erases -- so the only way a pulse delays a read is by
    already being in service when the read arrives (bounded by one
    pulse duration, the same bound the paper's tpLock hiding argues).

    Suspension is inherited because it is *safe* under lock-based
    sanitization: a secSSD GC erase reclaims a block whose secured
    pages were already sanitized by pLock/bLock, so pausing it for a
    host read delays nothing security-relevant.  An erSSD cannot use
    this policy honestly -- its erases *are* the sanitization, so
    suspending or deferring them would reopen the deallocated-data
    window the paper measures (run erSSD under ``read_priority``).
    Lock pulses themselves are never suspendable.
    """

    name = "defer"
    defer_locks = True
    #: drained lock pulses run behind all host traffic.
    DRAIN_PRIORITY = 2

    def __init__(
        self, max_pending: int = 64, resume_overhead_us: float = 20.0
    ) -> None:
        super().__init__(resume_overhead_us=resume_overhead_us)
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending

    def defers(self, segment) -> bool:
        return segment.kind in LOCK_KINDS

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "max_pending": self.max_pending,
            "resume_overhead_us": self.resume_overhead_us,
        }


#: name -> zero-argument factory (CLI/experiment registry).
POLICIES: dict[str, type[SchedulingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    ReadPriorityPolicy.name: ReadPriorityPolicy,
    SuspendPolicy.name: SuspendPolicy,
    DeferLocksPolicy.name: DeferLocksPolicy,
}


def policy_by_name(name: str, **kwargs) -> SchedulingPolicy:
    if name not in POLICIES:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return POLICIES[name](**kwargs)
