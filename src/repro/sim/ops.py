"""Flash-operation capture: how the event engine drives the real FTLs.

The FTL variants execute *functionally* the instant a request is
submitted (mapping updates, GC, lock manager, fault handling) and report
every primitive flash operation to their :class:`TimingModel`.  The
engine exploits that seam: it swaps in :class:`RecordingTiming`, a
``TimingModel`` subclass that keeps the open-loop occupancy accounting
bit-identical (the cross-check against the open-loop model depends on
it) while *also* capturing the per-request operation stream.  Each
captured :class:`FlashOp` is then re-enacted as queued service on the
simulated chip/channel resources, so queueing delay -- the thing the
open-loop model cannot express -- falls out of the event schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.ssd.config import SSDConfig
from repro.ssd.timing import TimingModel


class OpKind(Enum):
    """Primitive flash operations the FTLs schedule."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    PLOCK = "plock"
    BLOCK_LOCK = "block_lock"
    SCRUB = "scrub"


#: operations that are sanitization lock pulses (deferral candidates).
LOCK_KINDS = frozenset({OpKind.PLOCK, OpKind.BLOCK_LOCK})

#: cell operations a suspension-capable chip can pause for a read
#: (erase suspend / program suspend, standard on modern NAND).
SUSPENDABLE_KINDS = frozenset({OpKind.ERASE, OpKind.PROGRAM})


@dataclass(frozen=True)
class FlashOp:
    """One captured primitive operation on one chip."""

    kind: OpKind
    chip_id: int


class RecordingTiming(TimingModel):
    """A :class:`TimingModel` that also captures per-request op streams.

    Accounting semantics are inherited unchanged -- ``elapsed_us`` of a
    recorded run is exactly what the plain open-loop model would report
    for the same request order, which is what makes the open-loop vs
    closed-loop agreement contract testable on a single run.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self._ops: list[FlashOp] | None = None

    @classmethod
    def from_config(cls, config: SSDConfig) -> "RecordingTiming":
        return cls(
            n_channels=config.n_channels,
            chips_per_channel=config.chips_per_channel,
            t_read_us=config.t_read_us,
            t_prog_us=config.t_prog_us,
            t_erase_us=config.t_erase_us,
            t_plock_us=config.t_plock_us,
            t_block_lock_us=config.t_block_lock_us,
            t_scrub_us=config.t_scrub_us,
            t_xfer_us=config.t_xfer_us,
        )

    # ------------------------------------------------------------------
    def begin_capture(self) -> None:
        if self._ops is not None:
            raise RuntimeError("capture already in progress")
        self._ops = []

    def end_capture(self) -> list[FlashOp]:
        if self._ops is None:
            raise RuntimeError("no capture in progress")
        ops, self._ops = self._ops, None
        return ops

    def _emit(self, kind: OpKind, chip_id: int) -> None:
        if self._ops is not None:
            self._ops.append(FlashOp(kind, chip_id))

    # ------------------------------------------------------------------
    def read(self, chip_id: int) -> float:
        end = super().read(chip_id)
        self._emit(OpKind.READ, chip_id)
        return end

    def program(self, chip_id: int) -> float:
        end = super().program(chip_id)
        self._emit(OpKind.PROGRAM, chip_id)
        return end

    def erase(self, chip_id: int) -> float:
        end = super().erase(chip_id)
        self._emit(OpKind.ERASE, chip_id)
        return end

    def plock(self, chip_id: int) -> float:
        end = super().plock(chip_id)
        self._emit(OpKind.PLOCK, chip_id)
        return end

    def block_lock(self, chip_id: int) -> float:
        end = super().block_lock(chip_id)
        self._emit(OpKind.BLOCK_LOCK, chip_id)
        return end

    def scrub(self, chip_id: int) -> float:
        end = super().scrub(chip_id)
        self._emit(OpKind.SCRUB, chip_id)
        return end

    # ------------------------------------------------------------------
    def cell_duration_us(self, kind: OpKind) -> float:
        """Chip occupancy of one operation (the cell-op stage)."""
        return {
            OpKind.READ: self.t_read_us,
            OpKind.PROGRAM: self.t_prog_us,
            OpKind.ERASE: self.t_erase_us,
            OpKind.PLOCK: self.t_plock_us,
            OpKind.BLOCK_LOCK: self.t_block_lock_us,
            OpKind.SCRUB: self.t_scrub_us,
        }[kind]
