"""Flash-operation capture: how the event engine drives the real FTLs.

The FTL variants execute *functionally* the instant a request is
submitted (mapping updates, GC, lock manager, fault handling) and report
every primitive flash operation to their :class:`TimingModel`.  The
engine exploits that seam: it swaps in :class:`RecordingTiming`, a
``TimingModel`` subclass that keeps the open-loop occupancy accounting
bit-identical (the cross-check against the open-loop model depends on
it) while *also* capturing the per-request operation stream.  Each
captured :class:`FlashOp` is then re-enacted as queued service on the
simulated chip/channel resources, so queueing delay -- the thing the
open-loop model cannot express -- falls out of the event schedule.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple

from repro.ssd.config import SSDConfig
from repro.ssd.timing import TimingModel


class OpKind(Enum):
    """Primitive flash operations the FTLs schedule."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    PLOCK = "plock"
    BLOCK_LOCK = "block_lock"
    SCRUB = "scrub"


#: operations that are sanitization lock pulses (deferral candidates).
LOCK_KINDS = frozenset({OpKind.PLOCK, OpKind.BLOCK_LOCK})

#: cell operations a suspension-capable chip can pause for a read
#: (erase suspend / program suspend, standard on modern NAND).
SUSPENDABLE_KINDS = frozenset({OpKind.ERASE, OpKind.PROGRAM})

#: operations that are sanitization by nature, wherever they appear --
#: a lock pulse or scrub pulse has no other purpose.
SANITIZE_KINDS = frozenset({OpKind.PLOCK, OpKind.BLOCK_LOCK, OpKind.SCRUB})


class FlashOp(NamedTuple):
    """One captured primitive operation on one chip.

    A ``NamedTuple`` rather than a dataclass: one is constructed per
    captured flash op (hundreds of thousands per benchmark run) and
    tuple construction is several times cheaper than a frozen-dataclass
    ``__init__``.

    ``sanitize`` attributes the op to data sanitization: always set for
    :data:`SANITIZE_KINDS`, and set for reads/programs/erases captured
    inside the FTL's :meth:`~repro.ssd.timing.TimingModel.sanitize_region`
    (relocation copies, padding programs, sanitize erases).  Plain host
    I/O and capacity-reclamation GC stay untagged.
    """

    kind: OpKind
    chip_id: int
    sanitize: bool = False


class RecordingTiming(TimingModel):
    """A :class:`TimingModel` that also captures per-request op streams.

    Accounting semantics are inherited unchanged -- ``elapsed_us`` of a
    recorded run is exactly what the plain open-loop model would report
    for the same request order, which is what makes the open-loop vs
    closed-loop agreement contract testable on a single run.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self._ops: list[FlashOp] | None = None
        self._cell_us = {
            OpKind.READ: self.t_read_us,
            OpKind.PROGRAM: self.t_prog_us,
            OpKind.ERASE: self.t_erase_us,
            OpKind.PLOCK: self.t_plock_us,
            OpKind.BLOCK_LOCK: self.t_block_lock_us,
            OpKind.SCRUB: self.t_scrub_us,
        }

    @classmethod
    def from_config(cls, config: SSDConfig) -> "RecordingTiming":
        return cls(
            n_channels=config.n_channels,
            chips_per_channel=config.chips_per_channel,
            t_read_us=config.t_read_us,
            t_prog_us=config.t_prog_us,
            t_erase_us=config.t_erase_us,
            t_plock_us=config.t_plock_us,
            t_block_lock_us=config.t_block_lock_us,
            t_scrub_us=config.t_scrub_us,
            t_xfer_us=config.t_xfer_us,
        )

    # ------------------------------------------------------------------
    def begin_capture(self) -> None:
        if self._ops is not None:
            raise RuntimeError("capture already in progress")
        self._ops = []

    def end_capture(self) -> list[FlashOp]:
        if self._ops is None:
            raise RuntimeError("no capture in progress")
        ops, self._ops = self._ops, None
        return ops

    def _emit(self, kind: OpKind, chip_id: int) -> None:
        if self._ops is not None:
            self._ops.append(
                FlashOp(
                    kind,
                    chip_id,
                    kind in SANITIZE_KINDS or self._sanitize_depth > 0,
                )
            )

    # ------------------------------------------------------------------
    # read/program run once per data page moved, so they inline both the
    # capture append and the parent's scheduling body (one page move is
    # two method layers otherwise).  KEEP IN LOCKSTEP with
    # TimingModel.read/program -- any accounting drift here breaks the
    # open-loop agreement contract, which the crosscheck tests enforce
    # and the SIM11 lockstep regions below verify statically.
    def read(self, chip_id: int) -> float:
        # lockstep: begin timing-read
        chip_busy = self.chip_busy
        if not 0 <= chip_id < len(chip_busy):
            self._check_chip(chip_id)
        channel_busy = self.channel_busy
        t_read = self.t_read_us
        t_xfer = self.t_xfer_us
        ch = chip_id // self.chips_per_channel
        sense_end = chip_busy[chip_id] + t_read
        chip_busy[chip_id] = sense_end
        chan_free = channel_busy[ch]
        xfer_start = sense_end if sense_end > chan_free else chan_free
        end = xfer_start + t_xfer
        channel_busy[ch] = end
        self.cell_work_us += t_read
        self.xfer_work_us += t_xfer
        self.total_work_us += t_read + t_xfer
        # lockstep: skip-begin -- op capture is the whole point of this
        # subclass; it has no accounting effect
        ops = self._ops
        if ops is not None:
            ops.append(
                FlashOp(OpKind.READ, chip_id, self._sanitize_depth > 0)
            )
        # lockstep: skip-end
        return end
        # lockstep: end timing-read

    def program(self, chip_id: int) -> float:
        # lockstep: begin timing-program
        chip_busy = self.chip_busy
        if not 0 <= chip_id < len(chip_busy):
            self._check_chip(chip_id)
        channel_busy = self.channel_busy
        t_prog = self.t_prog_us
        t_xfer = self.t_xfer_us
        ch = chip_id // self.chips_per_channel
        xfer_end = channel_busy[ch] + t_xfer
        channel_busy[ch] = xfer_end
        chip_free = chip_busy[chip_id]
        start = chip_free if chip_free > xfer_end else xfer_end
        end = start + t_prog
        chip_busy[chip_id] = end
        self.cell_work_us += t_prog
        self.xfer_work_us += t_xfer
        self.total_work_us += t_prog + t_xfer
        # lockstep: skip-begin -- op capture is the whole point of this
        # subclass; it has no accounting effect
        ops = self._ops
        if ops is not None:
            ops.append(
                FlashOp(OpKind.PROGRAM, chip_id, self._sanitize_depth > 0)
            )
        # lockstep: skip-end
        return end
        # lockstep: end timing-program

    def erase(self, chip_id: int) -> float:
        end = super().erase(chip_id)
        self._emit(OpKind.ERASE, chip_id)
        return end

    def plock(self, chip_id: int) -> float:
        end = super().plock(chip_id)
        self._emit(OpKind.PLOCK, chip_id)
        return end

    def block_lock(self, chip_id: int) -> float:
        end = super().block_lock(chip_id)
        self._emit(OpKind.BLOCK_LOCK, chip_id)
        return end

    def scrub(self, chip_id: int) -> float:
        end = super().scrub(chip_id)
        self._emit(OpKind.SCRUB, chip_id)
        return end

    # ------------------------------------------------------------------
    def cell_duration_us(self, kind: OpKind) -> float:
        """Chip occupancy of one operation (the cell-op stage)."""
        return self._cell_us[kind]
