"""End-to-end simulation runs: workload -> block trace -> event engine.

The paper's methodology replays *identical file-level activity* against
every SSD variant so that each variant's FTL determines the physical
outcome.  The closed-loop engine keeps that discipline with one extra
step: because :class:`~repro.host.filesystem.FileSystem` never reads
data back from the device (it only submits block requests), the exact
per-variant request stream can be captured once against a stub device
and then dispatched by the event engine with queueing applied.  The
capture also marks where the generator's setup (pre-fill) phase ends, so
latency percentiles cover only steady state.

:func:`simulate_workload` is the one entry point the CLI, benchmarks,
and examples share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json

from repro.faults import FaultPlan
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer
from repro.sim.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.sim.engine import EngineReport, QueueingEngine
from repro.sim.ops import RecordingTiming
from repro.sim.policies import SchedulingPolicy, policy_by_name
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest
from repro.ssd.stats import RunResult
from repro.telemetry import Telemetry  # lint: disable=SIM14 -- cross-cutting observability seam, zero-cost when disabled
from repro.workloads import WORKLOADS


class _CaptureFtl:
    """Just enough FTL surface for :class:`FileSystem` (logical_time)."""

    logical_time = 0


class _CaptureDevice:
    """Stub device that records the block requests a trace generates."""

    def __init__(self, logical_pages: int) -> None:
        self.logical_pages = logical_pages
        self.ftl = _CaptureFtl()
        self.requests: list[IoRequest] = []

    def submit(self, request: IoRequest) -> None:
        self.requests.append(request)


def capture_generator_trace(
    config: SSDConfig,
    generator,
    steady_write_pages: int,
) -> tuple[list[IoRequest], int]:
    """Render one generator instance into block requests.

    The generalized capture seam: any object with the
    :class:`~repro.workloads.base.WorkloadGenerator` interface
    (``setup()`` + ``steady(total_write_pages)``) renders into the
    variant-independent block-request stream the engine replays --
    which is how :mod:`repro.fleet` drives tenant-compiled per-device
    workloads through the same pipeline as the named Table-2 traces.

    Returns ``(requests, steady_start)`` where ``steady_start`` is the
    index of the first steady-state request (everything before it is the
    generator's pre-fill and is excluded from latency percentiles).
    """
    capture = _CaptureDevice(config.logical_pages)
    replayer = TraceReplayer(FileSystem(capture))  # type: ignore[arg-type]
    replayer.replay(generator.setup())
    steady_start = len(capture.requests)
    replayer.replay(generator.steady(steady_write_pages))
    return capture.requests, steady_start


def capture_block_trace(
    config: SSDConfig,
    workload: str,
    seed: int = 1,
    secure_fraction: float = 1.0,
    write_multiplier: float = 1.0,
) -> tuple[list[IoRequest], int]:
    """Render one named workload into block requests, variant-independently.

    Returns ``(requests, steady_start)`` where ``steady_start`` is the
    index of the first steady-state request (everything before it is the
    generator's pre-fill and is excluded from latency percentiles).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    generator = WORKLOADS[workload](
        capacity_pages=config.logical_pages,
        seed=seed,
        secure_fraction=secure_fraction,
    )
    return capture_generator_trace(
        config, generator, int(config.logical_pages * write_multiplier)
    )


@dataclass
class SimResult:
    """One closed-loop simulation of one workload on one variant."""

    workload: str
    variant: str
    policy: dict[str, object]
    arrivals: dict[str, object]
    requests: int
    steady_start: int
    report: EngineReport
    run: RunResult
    #: the simulated device itself, for post-run forensic probing by the
    #: audit layer (never serialized; excluded from comparisons).
    device: SSD | None = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "variant": self.variant,
            "policy": self.policy,
            "arrivals": self.arrivals,
            "requests": self.requests,
            "steady_start": self.steady_start,
            "report": self.report.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def simulate_trace(
    config: SSDConfig,
    workload: str,
    variant: str,
    requests: list[IoRequest],
    steady_start: int,
    seed: int = 1,
    policy: SchedulingPolicy | str = "fifo",
    arrivals: ArrivalProcess | None = None,
    checked: bool | None = None,
    check_interval: int | None = None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> SimResult:
    """Simulate a pre-captured block-request trace on one variant.

    The seam between trace capture and queueing simulation: callers
    that render their own traces (the fleet scheduler renders one
    variant-independent trace per device and replays it against every
    variant) dispatch them here.  ``workload`` is only a label carried
    into the result.
    """
    if isinstance(policy, str):
        policy = policy_by_name(policy)
    if arrivals is None:
        arrivals = ClosedLoopArrivals()
    ssd = SSD(
        config,
        variant,
        seed=seed,
        checked=checked,
        check_interval=check_interval,
        faults=faults,
        telemetry=telemetry,
    )
    ssd.instrument_timing(RecordingTiming.from_config(config))
    engine = QueueingEngine(
        ssd, requests, arrivals, policy, steady_start=steady_start
    )
    report = engine.run()
    run = ssd.result()
    run.latency = report.latency
    run.utilization = report.utilization
    return SimResult(
        workload=workload,
        variant=variant,
        policy=policy.describe(),
        arrivals=arrivals.describe(),
        requests=len(requests),
        steady_start=steady_start,
        report=report,
        run=run,
        device=ssd,
    )


def simulate_workload(
    config: SSDConfig,
    workload: str,
    variant: str,
    seed: int = 1,
    secure_fraction: float = 1.0,
    write_multiplier: float = 1.0,
    policy: SchedulingPolicy | str = "fifo",
    arrivals: ArrivalProcess | None = None,
    checked: bool | None = None,
    check_interval: int | None = None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> SimResult:
    """Simulate one workload on one variant under queueing.

    The captured block trace is identical for every variant at a given
    (config, workload, seed), so cross-variant comparisons see the same
    host traffic.  The returned :class:`RunResult` carries the engine's
    latency percentiles and per-resource utilization alongside the usual
    functional statistics.  Passing a :class:`~repro.telemetry.Telemetry`
    session records the run's structured event trace and metrics (the
    engine points the trace clock at the simulated time base).
    """
    requests, steady_start = capture_block_trace(
        config,
        workload,
        seed=seed,
        secure_fraction=secure_fraction,
        write_multiplier=write_multiplier,
    )
    return simulate_trace(
        config,
        workload,
        variant,
        requests,
        steady_start,
        seed=seed,
        policy=policy,
        arrivals=arrivals,
        checked=checked,
        check_interval=check_interval,
        faults=faults,
        telemetry=telemetry,
    )
