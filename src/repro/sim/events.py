"""Deterministic event heap and simulated clock.

The queueing engine is a textbook discrete-event simulator: a priority
queue of future events ordered by simulated time, popped one at a time,
each handler possibly scheduling further events.  Everything here is
deliberately boring -- determinism is the whole point:

* ties on the timestamp break on a monotonically increasing insertion
  sequence number, so same-time events fire in the order they were
  scheduled (no heap-internal nondeterminism, no id()-based ordering);
* the clock only ever moves forward; scheduling into the past is a bug
  and raises immediately instead of silently reordering history;
* there is no wall-clock anywhere -- rule SIM07 (`repro lint`) enforces
  that nothing under ``repro/sim/`` imports ``time`` or ``datetime`` or
  draws from module-level RNG state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence.

    ``kind`` is an engine-defined string (``"arrival"``, ``"done"``);
    ``payload`` is whatever the handler needs.  Events compare by
    ``(time_us, seq)`` only -- payloads never participate in ordering.
    The engine's run loop works on raw heap tuples (see
    :class:`EventHeap`); this object is the inspection-friendly view.
    """

    time_us: float
    seq: int
    kind: str
    payload: object = None


class SimClock:
    """Monotonic simulated time in microseconds."""

    def __init__(self) -> None:
        self.now_us = 0.0

    def advance_to(self, time_us: float) -> None:
        if time_us < self.now_us:
            raise ValueError(
                f"clock cannot move backwards: {time_us} < {self.now_us}"
            )
        self.now_us = time_us


@dataclass
class EventHeap:
    """Min-heap of events with stable FIFO tie-breaking.

    Entries are stored as plain ``(time_us, seq, kind, payload)`` tuples;
    the engine's run loop uses :meth:`schedule`/:meth:`pop_entry`, which
    never materialize an :class:`Event` -- with hundreds of thousands of
    events per run, the frozen-dataclass construction on every push was
    one of the hottest allocations in the simulator.  :meth:`push` and
    :meth:`pop` remain as the object-returning convenience API.
    """

    _heap: list[tuple[float, int, str, object]] = field(default_factory=list)
    _seq: int = 0
    #: total events ever pushed (the engine's events-processed metric).
    pushed: int = 0

    def schedule(self, time_us: float, kind: str, payload: object = None) -> None:
        """Hot-path push: validates and enqueues, returns nothing."""
        if time_us < 0.0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time_us, self._seq, kind, payload))
        self._seq += 1
        self.pushed += 1

    def push(self, time_us: float, kind: str, payload: object = None) -> Event:
        if time_us < 0.0:
            raise ValueError("event time must be non-negative")
        event = Event(time_us=time_us, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        self.pushed += 1
        heapq.heappush(self._heap, (event.time_us, event.seq, kind, payload))
        return event

    def pop_entry(self) -> tuple[float, int, str, object]:
        """Hot-path pop: the raw ``(time_us, seq, kind, payload)`` tuple."""
        if not self._heap:
            raise IndexError("pop from empty event heap")
        return heapq.heappop(self._heap)

    def entries(self) -> list[tuple[float, int, str, object]]:
        """The backing heap list, for the engine's run loop to drain
        directly with ``heapq.heappop`` (skipping the per-event method
        dispatch).  Callers must only pop via ``heapq``; pushes still go
        through :meth:`schedule`/:meth:`push` so validation and the
        ``pushed`` counter stay authoritative."""
        return self._heap

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event heap")
        return Event(*heapq.heappop(self._heap))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time_us(self) -> float | None:
        return self._heap[0][0] if self._heap else None
