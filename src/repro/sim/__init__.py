"""Deterministic discrete-event queueing simulation of the SSD variants.

The open-loop :class:`~repro.ssd.timing.TimingModel` answers "how fast
can the device go"; this package answers "how long does a request
*wait*".  It replays the same captured block traces through a
discrete-event engine with per-chip and per-channel service queues,
seeded load generators, and pluggable scheduling policies (FIFO, read
priority, erase/program suspension, sanitization-lock deferral), turning
erSSD vs scrSSD vs secSSD *tail latency* into a first-class result.

Entry points: :func:`~repro.sim.runner.simulate_workload` (and the
``repro simulate`` / ``repro bench`` CLI subcommands built on it).
Rule SIM07 keeps every module here free of wall-clock and module-level
RNG calls, so identical seeds give byte-identical reports.
"""

from repro.sim.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
)
from repro.sim.engine import EngineReport, QueueingEngine, Segment, Server
from repro.sim.events import Event, EventHeap, SimClock
from repro.sim.metrics import PERCENTILES, DepthSeries, LatencyRecorder, percentile
from repro.sim.ops import (
    LOCK_KINDS,
    SUSPENDABLE_KINDS,
    FlashOp,
    OpKind,
    RecordingTiming,
)
from repro.sim.policies import (
    POLICIES,
    DeferLocksPolicy,
    FifoPolicy,
    ReadPriorityPolicy,
    SchedulingPolicy,
    SuspendPolicy,
    policy_by_name,
)
from repro.sim.runner import SimResult, capture_block_trace, simulate_workload

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "DeferLocksPolicy",
    "DepthSeries",
    "Event",
    "EventHeap",
    "EngineReport",
    "FifoPolicy",
    "FlashOp",
    "LOCK_KINDS",
    "LatencyRecorder",
    "OpKind",
    "PERCENTILES",
    "POLICIES",
    "PoissonArrivals",
    "QueueingEngine",
    "ReadPriorityPolicy",
    "RecordingTiming",
    "SUSPENDABLE_KINDS",
    "SchedulingPolicy",
    "Segment",
    "Server",
    "SimClock",
    "SimResult",
    "SuspendPolicy",
    "capture_block_trace",
    "percentile",
    "policy_by_name",
    "simulate_workload",
]
