"""The discrete-event queueing engine.

How a request flows:

1. An **arrival** event dispatches the request to the real FTL
   (``ssd.submit``), which executes *functionally* right away -- mapping
   updates, GC, sanitization, fault handling -- while the installed
   :class:`~repro.sim.ops.RecordingTiming` captures every primitive
   flash operation it scheduled.
2. Each captured operation becomes one or two **service segments** on
   the simulated resources: a read senses on its chip then transfers on
   its channel; a program transfers then occupies the chip; erases,
   lock pulses, and scrubs occupy the chip only.  Segments queue per
   resource and are picked by the scheduling policy.
3. The request **completes** when its last segment finishes; end-to-end
   latency is completion minus arrival.  Closed-loop arrivals release
   the next request at that instant.

The engine therefore answers what the open-loop occupancy model cannot:
how long a host request *waits* behind GC relocation storms, erase
trains, and sanitization pulses -- while the FTL state, statistics, and
fault behaviour stay exactly those of the replayed variant.  Under a
saturating closed-loop load the same run also carries the open-loop
answer (``RecordingTiming`` inherits the occupancy accounting), which is
the agreement contract ``tests/sim/test_crosscheck.py`` enforces.

Determinism: a single seeded request stream, seeded arrival processes,
FIFO tie-breaks on insertion order, and no wall clock (rule SIM07).
Identical seeds produce byte-identical reports.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass, field

from repro.ftl.observer import notify_optional
from repro.sim.events import EventHeap, SimClock
from repro.sim.metrics import DepthSeries, LatencyRecorder, WorkSeries
from repro.sim.ops import OpKind, RecordingTiming
from repro.sim.policies import DeferLocksPolicy, SchedulingPolicy
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest, RequestOp
from repro.telemetry import Telemetry  # lint: disable=SIM14 -- cross-cutting observability seam, zero-cost when disabled

_EV_ARRIVAL = "arrival"
_EV_DONE = "done"


@dataclass(slots=True)
class _InFlight:
    """One dispatched host request awaiting its service segments."""

    index: int
    op: RequestOp
    arrival_us: float
    remaining: int = 0


class _DrainBatch:
    """Telemetry bookkeeping for one deferred-lock drain.

    The drain *span* covers the batch from the flush decision until its
    last pulse finishes service; since pulses complete one ``DONE``
    event at a time, the batch counts them down and the final one emits
    the span.
    """

    __slots__ = ("chip", "start_us", "waited_us", "n_locks", "remaining")

    def __init__(
        self, chip: int | None, start_us: float, waited_us: float, n_locks: int
    ) -> None:
        self.chip = chip
        self.start_us = start_us
        self.waited_us = waited_us
        self.n_locks = n_locks
        self.remaining = n_locks


class Segment:
    """One stage of one flash operation on one resource."""

    __slots__ = (
        "kind",
        "stage",
        "duration_us",
        "request",
        "follow",
        "successor",
        "ready",
        "seq",
        "drain",
        "sanitize",
    )

    def __init__(
        self,
        kind: OpKind,
        stage: str,
        duration_us: float,
        request: _InFlight | None,
        follow: tuple[int, float, str] | None = None,
        sanitize: bool = False,
    ) -> None:
        self.kind = kind
        self.stage = stage  # "cell" (chip) | "xfer" (channel)
        self.duration_us = duration_us
        self.request = request
        #: sanitization attribution carried from the captured FlashOp;
        #: survives a severed request link (deferred lock pulses) and
        #: follow/successor stage creation.
        self.sanitize = sanitize
        #: work-conserving mode: (server index, duration, stage) queued
        #: when this stage ends.
        self.follow = follow
        #: in-order mode: (server index, segment) already queued on its
        #: server, made ready when this stage ends.
        self.successor: tuple[int, "Segment"] | None = None
        #: in-order mode: an unready head-of-queue segment *stalls* its
        #: server (the open-loop model's reservation semantics).
        self.ready = True
        self.seq = -1  # assigned at enqueue time
        #: telemetry: set on deferred lock pulses when tracing is on; the
        #: last segment of the batch to finish emits the drain span.
        self.drain: _DrainBatch | None = None


class Server:
    """One simulated resource (a chip or a channel) with its queue."""

    __slots__ = (
        "key",
        "chip_id",
        "queue",
        "current",
        "current_start_us",
        "current_end_us",
        "token",
        "busy_us",
        "pending_locks",
        "oldest_pending_us",
    )

    def __init__(self, key: str, chip_id: int | None, fifo: bool = False) -> None:
        self.key = key
        self.chip_id = chip_id  # None for channels
        # FIFO-family non-preemptive policies keep strict submission
        # order, so the queue degenerates to a deque of bare Segments
        # (append/popleft); priority policies get a heap of
        # (priority, seq, Segment) tuples
        self.queue: deque[Segment] | list[tuple[int, int, Segment]] = (
            deque() if fifo else []
        )
        self.current: Segment | None = None
        self.current_start_us = 0.0
        self.current_end_us = 0.0
        self.token = 0
        self.busy_us = 0.0
        self.pending_locks: list[Segment] = []
        self.oldest_pending_us = 0.0

    @property
    def idle(self) -> bool:
        return self.current is None and not self.queue


@dataclass
class EngineReport:
    """Everything one engine run measured (JSON-ready, deterministic)."""

    completed: int
    sim_elapsed_us: float
    open_loop_elapsed_us: float
    events: int
    latency: dict[str, dict[str, float]]
    utilization: dict[str, float]
    queue_depth: list[tuple[float, int]]
    in_flight_peak: int
    mean_in_flight: float
    queued_segments_peak: int
    deferred_lock_pulses: int
    lock_drains: int
    suspensions: int
    checker: dict[str, int] = field(default_factory=dict)
    #: sanitization flash work issued but not yet serviced, as a
    #: (time_us, backlog_us) step series.  Counts every captured op the
    #: FTL tagged as sanitization: lock and scrub pulses wherever they
    #: appear, plus reads/programs/erases issued inside a
    #: ``timing.sanitize_region()`` (relocation copies, padding
    #: programs, sanitize erases).  Plain host I/O and
    #: capacity-reclamation GC stay out (DESIGN.md 3j).
    sanitize_backlog: list[tuple[float, float]] = field(default_factory=list)
    sanitize_backlog_peak_us: float = 0.0
    sanitize_backlog_mean_us: float = 0.0

    @property
    def iops(self) -> float:
        """Completed host requests per second of simulated time."""
        if self.sim_elapsed_us <= 0.0:
            return 0.0
        return self.completed / (self.sim_elapsed_us / 1e6)

    @property
    def open_loop_iops(self) -> float:
        """The occupancy model's IOPS for the identical request order."""
        if self.open_loop_elapsed_us <= 0.0:
            return 0.0
        return self.completed / (self.open_loop_elapsed_us / 1e6)

    @property
    def open_loop_agreement(self) -> float:
        """engine IOPS / open-loop IOPS (1.0 = perfect agreement)."""
        if self.open_loop_iops == 0.0:
            return 0.0
        return self.iops / self.open_loop_iops

    def to_dict(self) -> dict[str, object]:
        return {
            "completed": self.completed,
            "sim_elapsed_us": self.sim_elapsed_us,
            "open_loop_elapsed_us": self.open_loop_elapsed_us,
            "iops": self.iops,
            "open_loop_iops": self.open_loop_iops,
            "open_loop_agreement": self.open_loop_agreement,
            "events": self.events,
            "latency": self.latency,
            "utilization": self.utilization,
            "queue_depth": [[t, d] for t, d in self.queue_depth],
            "in_flight_peak": self.in_flight_peak,
            "mean_in_flight": self.mean_in_flight,
            "queued_segments_peak": self.queued_segments_peak,
            "deferred_lock_pulses": self.deferred_lock_pulses,
            "lock_drains": self.lock_drains,
            "suspensions": self.suspensions,
            "checker": self.checker,
            "sanitize_backlog": [[t, b] for t, b in self.sanitize_backlog],
            "sanitize_backlog_peak_us": self.sanitize_backlog_peak_us,
            "sanitize_backlog_mean_us": self.sanitize_backlog_mean_us,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


class QueueingEngine:
    """Runs one request stream through one SSD under one policy."""

    def __init__(
        self,
        ssd: SSD,
        requests: list[IoRequest],
        arrivals,
        policy: SchedulingPolicy,
        steady_start: int = 0,
    ) -> None:
        timing = ssd.ftl.timing
        if not isinstance(timing, RecordingTiming):
            raise TypeError(
                "the engine needs a RecordingTiming installed via "
                "SSD.instrument_timing (see repro.sim.runner)"
            )
        if not 0 <= steady_start <= len(requests):
            raise ValueError("steady_start out of range")
        self.ssd = ssd
        self.timing = timing
        self.requests = requests
        self.arrivals = arrivals
        self.policy = policy
        self.steady_start = steady_start
        #: dispatch horizon: requests with index >= _limit are not
        #: released.  ``run()`` sets it to the full stream; checkpointed
        #: campaigns move it forward window by window (``run_window``).
        self._limit = len(requests)

        # policies that never override priority() (FIFO family) get a
        # constant: _enqueue then skips one method call per segment
        self._const_priority: int | None = (
            0
            if type(policy).priority is SchedulingPolicy.priority
            else None
        )
        # constant priority + no preemption means heap order is exactly
        # submission order: server queues become deques (see Server)
        self._fifo_queues: bool = (
            self._const_priority is not None and not policy.preemptive
        )
        n_chips = timing.n_chips
        fifo = self._fifo_queues
        self.servers: list[Server] = [
            Server(f"chip{i}", chip_id=i, fifo=fifo) for i in range(n_chips)
        ] + [
            Server(f"chan{j}", chip_id=None, fifo=fifo)
            for j in range(timing.n_channels)
        ]
        self._chan_base = n_chips
        self._cpc = timing.chips_per_channel

        self.clock = SimClock()
        self.heap = EventHeap()
        self.latency = LatencyRecorder()
        self.depth = DepthSeries()
        #: outstanding sanitization-class flash work (lock pulses,
        #: scrubs, erases issued but not yet serviced), in microseconds
        #: of chip time; sampled into a step series on every change.
        self.sanitize_backlog = WorkSeries()
        self._sanitize_backlog_us = 0.0
        self._seq = 0
        self._next_index = 0
        self._arrival_time_us = 0.0
        self.in_flight = 0
        self.completed = 0
        self.queued_segments = 0
        self.queued_segments_peak = 0
        self.deferred_lock_pulses = 0
        self.lock_drains = 0
        self.suspensions = 0

        # closed-loop runs re-point the trace clock at the event heap:
        # the FTL's functional execution happens instantaneously at
        # dispatch time, so its spans collapse to zero duration at the
        # dispatch instant while keeping their nesting (depth args).
        self._tel: Telemetry | None = getattr(ssd, "telemetry", None)
        if self._tel is not None:
            self._tel.bus.clock = lambda: self.clock.now_us

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self) -> EngineReport:
        self.run_window(len(self.requests))
        return self._report()

    def run_window(self, stop: int) -> None:
        """Dispatch and fully drain requests up to index ``stop``.

        At return the engine is *quiescent* -- heap empty, nothing in
        flight, every server idle with no pending lock pulses -- which
        is the only point a device checkpoint is taken (see
        repro.checkpoint.campaign).  ``run()`` is exactly one window
        over the whole stream.
        """
        if not self._next_index <= stop <= len(self.requests):
            raise ValueError(
                f"window stop {stop} out of range "
                f"[{self._next_index}, {len(self.requests)}]"
            )
        self._limit = stop
        self._seed_arrivals()
        # the loop body executes once per event (hundreds of thousands
        # per run): bind the hot callables/objects to locals and drain
        # the raw heap list directly, dodging a method dispatch and an
        # attribute walk per event
        entries = self.heap.entries()
        pop = heapq.heappop
        clock = self.clock
        dispatch = self._dispatch
        on_done = self._on_done
        while True:
            while entries:
                time_us, _seq, kind, payload = pop(entries)
                if time_us < clock.now_us:  # SimClock.advance_to, inlined
                    clock.advance_to(time_us)  # raises the canonical error
                clock.now_us = time_us
                if kind == _EV_ARRIVAL:
                    dispatch(payload)
                else:  # _EV_DONE
                    server, token = payload
                    on_done(server, token)
            stragglers = [s for s in self.servers if s.pending_locks]
            if not stragglers:
                break
            # lock pulses deferred on chips that never went idle and saw
            # no later traffic: the window's final idle gap drains them.
            for server in stragglers:
                self._drain_locks(server)

    def _seed_arrivals(self) -> None:
        limit = self._limit
        if self._next_index >= limit:
            return
        now = self.clock.now_us
        if self.arrivals.closed_loop:
            first = min(self.arrivals.queue_depth, limit - self._next_index)
            for _ in range(first):
                self.heap.schedule(now, _EV_ARRIVAL, self._next_index)
                self._next_index += 1
        elif self._next_index == 0:
            # the stream's very first arrival is pinned at t=0 and
            # consumes no RNG draw (the historical open-loop contract)
            self.heap.schedule(0.0, _EV_ARRIVAL, 0)
            self._next_index = 1
        else:
            # a resumed open-loop window: draw the next gap exactly as
            # _dispatch would have
            self._arrival_time_us += self.arrivals.interarrival_us()
            self.heap.schedule(
                max(self._arrival_time_us, now), _EV_ARRIVAL, self._next_index
            )
            self._next_index += 1

    # ------------------------------------------------------------------
    # arrivals and dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, index: int) -> None:
        now = self.clock.now_us
        if not self.arrivals.closed_loop and self._next_index < self._limit:
            self._arrival_time_us += self.arrivals.interarrival_us()
            self.heap.schedule(
                max(self._arrival_time_us, now), _EV_ARRIVAL, self._next_index
            )
            self._next_index += 1

        request = self.requests[index]
        self.timing.begin_capture()
        self.ssd.submit(request)  # functional execution + op capture
        ops = self.timing.end_capture()

        inflight = _InFlight(index=index, op=request.op, arrival_us=now)
        self.in_flight += 1
        self.depth.record(now, self.in_flight)

        deferring = isinstance(self.policy, DeferLocksPolicy)
        in_order = self.policy.in_order
        # the ops loop runs once per captured flash op; hoist the
        # per-iteration attribute walks out of it
        timing = self.timing
        t_read = timing.t_read_us
        t_prog = timing.t_prog_us
        t_xfer = timing.t_xfer_us
        servers = self.servers
        chan_base = self._chan_base
        cpc = self._cpc
        backlog_add = 0.0
        for op in ops:
            chip = op.chip_id
            chan = chan_base + chip // cpc
            sanitize = op.sanitize
            if op.kind is OpKind.READ:
                if sanitize:
                    backlog_add += t_read
                inflight.remaining += 2
                if in_order:
                    self._enqueue_stages(
                        op.kind, inflight,
                        (chip, t_read, "cell"),
                        (chan, t_xfer, "xfer"),
                        sanitize=sanitize,
                    )
                else:
                    seg = Segment(
                        op.kind, "cell", t_read, inflight,
                        follow=(chan, t_xfer, "xfer"),
                        sanitize=sanitize,
                    )
                    self._enqueue(servers[chip], seg)
            elif op.kind is OpKind.PROGRAM:
                if sanitize:
                    backlog_add += t_prog
                inflight.remaining += 2
                if in_order:
                    self._enqueue_stages(
                        op.kind, inflight,
                        (chan, t_xfer, "xfer"),
                        (chip, t_prog, "cell"),
                        sanitize=sanitize,
                    )
                else:
                    seg = Segment(
                        op.kind, "xfer", t_xfer, inflight,
                        follow=(chip, t_prog, "cell"),
                        sanitize=sanitize,
                    )
                    self._enqueue(servers[chan], seg)
            else:
                # the FlashOp carries the attribution (lock/scrub pulses
                # always; reads/programs/erases when the FTL captured
                # them inside a sanitize_region).  Tagged work joins the
                # backlog the instant the FTL issues it, whether queued
                # for service now or parked by lock deferral.
                duration = timing.cell_duration_us(op.kind)
                if sanitize:
                    backlog_add += duration
                seg = Segment(
                    op.kind, "cell", duration, inflight, sanitize=sanitize
                )
                if deferring and self.policy.defers(seg):
                    seg.request = None  # off the request critical path
                    self._defer_lock(servers[chip], seg)
                else:
                    inflight.remaining += 1
                    self._enqueue(servers[chip], seg)

        if backlog_add > 0.0:
            backlog_us = self._sanitize_backlog_us + backlog_add
            self._sanitize_backlog_us = backlog_us
            self.sanitize_backlog.record(now, backlog_us)
        if inflight.remaining == 0:
            # unmapped reads / pure-trim bookkeeping: no flash service
            self._complete(inflight)

    def _enqueue_stages(
        self,
        kind: OpKind,
        inflight: _InFlight,
        first: tuple[int, float, str],
        second: tuple[int, float, str],
        sanitize: bool = False,
    ) -> None:
        """In-order mode: reserve both stages of a two-stage op now.

        The second stage sits unready in its server's queue; under the
        FIFO discipline an unready head stalls the server, reproducing
        the open-loop model's in-submission-order resource reservation
        (and its head-of-line blocking) exactly.
        """
        s1_server, s1_dur, s1_stage = first
        s2_server, s2_dur, s2_stage = second
        s1 = Segment(kind, s1_stage, s1_dur, inflight, sanitize=sanitize)
        s2 = Segment(kind, s2_stage, s2_dur, inflight, sanitize=sanitize)
        s2.ready = False
        s1.successor = (s2_server, s2)
        if self._fifo_queues:
            # _enqueue for s1, inlined (this runs once per two-stage op):
            # FIFO queues never preempt, so only the idle-start attempt
            # survives.  s2 is then pushed with no start attempt at all
            # -- an unready segment can never start service (an idle
            # in-order server's head is unready or its queue is empty)
            # nor preempt (in-order mode is the non-preemptive family).
            # Counter/peak update order matches _enqueue exactly.
            seq = self._seq
            s1.seq = seq
            s2.seq = seq + 1
            self._seq = seq + 2
            server = self.servers[s1_server]
            server.queue.append(s1)
            queued = self.queued_segments + 1
            self.queued_segments = queued
            if queued > self.queued_segments_peak:
                self.queued_segments_peak = queued
            if server.current is None:
                self._start_next(server)
            self.servers[s2_server].queue.append(s2)
            queued = self.queued_segments + 1
            self.queued_segments = queued
            if queued > self.queued_segments_peak:
                self.queued_segments_peak = queued
            return
        self._enqueue(self.servers[s1_server], s1)
        s2.seq = self._seq
        self._seq += 1
        priority = self._const_priority
        if priority is None:
            priority = self.policy.priority(s2)
        heapq.heappush(self.servers[s2_server].queue, (priority, s2.seq, s2))
        self.queued_segments += 1
        if self.queued_segments > self.queued_segments_peak:
            self.queued_segments_peak = self.queued_segments

    def _defer_lock(self, server: Server, segment: Segment) -> None:
        if not server.pending_locks:
            server.oldest_pending_us = self.clock.now_us
        server.pending_locks.append(segment)
        self.deferred_lock_pulses += 1
        if len(server.pending_locks) >= self.policy.max_pending:
            self._drain_locks(server)

    def _drain_locks(self, server: Server) -> None:
        """Flush a chip's pending lock pulses into its service queue."""
        pending, server.pending_locks = server.pending_locks, []
        if not pending:
            return
        waited_us = self.clock.now_us - server.oldest_pending_us
        self.lock_drains += 1
        if self._tel is not None:
            batch = _DrainBatch(
                server.chip_id, self.clock.now_us, waited_us, len(pending)
            )
            for segment in pending:
                segment.drain = batch
        for segment in pending:
            self._enqueue(server, segment, priority=self.policy.DRAIN_PRIORITY)
        notify_optional(
            self.ssd.ftl.observer,
            "on_lock_deferred",
            server.chip_id,
            len(pending),
            waited_us,
        )

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _enqueue(
        self, server: Server, segment: Segment, priority: int | None = None
    ) -> None:
        segment.seq = self._seq
        self._seq += 1
        if self._fifo_queues:
            # a priority override (lock-drain flush) cannot reach a FIFO
            # queue: only DeferLocksPolicy defers, and it is priority-based
            server.queue.append(segment)
        else:
            if priority is None:
                # FIFO-family policies never override priority(): skip the
                # per-segment call (see __init__'s _const_priority probe)
                priority = self._const_priority
                if priority is None:
                    priority = self.policy.priority(segment)
            heapq.heappush(server.queue, (priority, segment.seq, segment))
        self.queued_segments += 1
        if self.queued_segments > self.queued_segments_peak:
            self.queued_segments_peak = self.queued_segments
        if server.current is None:
            self._start_next(server)
        elif (
            self.policy.preemptive
            and server.current_end_us > self.clock.now_us
            and self.policy.preempts(segment, server.current)
        ):
            self._suspend_current(server)
            self._start_next(server)

    def _suspend_current(self, server: Server) -> None:
        """Pause the in-service cell op; it resumes with remaining time."""
        segment = server.current
        assert segment is not None
        now = self.clock.now_us
        remaining = server.current_end_us - now
        server.busy_us += now - server.current_start_us
        segment.duration_us = remaining + self.policy.resume_overhead_us
        server.current = None
        server.token += 1  # the scheduled DONE event is now stale
        # the original seq keeps the suspended op ahead of later arrivals
        # of its own priority class
        heapq.heappush(
            server.queue, (self.policy.priority(segment), segment.seq, segment)
        )
        self.queued_segments += 1
        self.suspensions += 1

    def _start_next(self, server: Server) -> None:
        queue = server.queue
        if server.current is not None or not queue:
            return
        segment = queue[0] if self._fifo_queues else queue[0][2]
        if not segment.ready:
            return  # in-order mode: head-of-line stall until ready
        # lockstep: begin engine-start-segment
        if self._fifo_queues:
            queue.popleft()
        else:
            heapq.heappop(queue)
        self.queued_segments -= 1
        now = self.clock.now_us
        server.current = segment
        server.current_start_us = now
        end = now + segment.duration_us
        server.current_end_us = end
        token = server.token + 1
        server.token = token
        # EventHeap.schedule, inlined: one DONE event per started
        # segment (the negative-time guard is unnecessary, end >= now)
        heap = self.heap
        heapq.heappush(heap._heap, (end, heap._seq, _EV_DONE, (server, token)))
        heap._seq += 1
        heap.pushed += 1
        # lockstep: end engine-start-segment

    def _on_done(self, server: Server, token: int) -> None:
        if token != server.token:
            return  # suspended/stale completion
        segment = server.current
        assert segment is not None
        now = self.clock.now_us
        server.busy_us += now - server.current_start_us
        if self._tel is not None:
            self._tel.bus.complete(
                "sim.service",
                segment.kind.value,
                ts_us=server.current_start_us,
                dur_us=now - server.current_start_us,
                tid=server.key,
                args={"stage": segment.stage},
            )
            if segment.drain is not None:
                batch = segment.drain
                batch.remaining -= 1
                if batch.remaining == 0:
                    self._tel.bus.complete(
                        "sim.drain",
                        "lock_drain",
                        ts_us=batch.start_us,
                        dur_us=now - batch.start_us,
                        tid=server.key,
                        args={
                            "n_locks": batch.n_locks,
                            "waited_us": batch.waited_us,
                        },
                    )
        server.current = None
        kind = segment.kind
        if segment.stage == "cell" and segment.sanitize:
            # mirror of _dispatch's accounting: an op leaves the backlog
            # only if it entered it (its FlashOp tag, carried on the
            # segment -- robust to a deferred lock's severed request
            # link).  It leaves at its *canonical* duration -- what
            # _dispatch added -- not segment.duration_us, which a
            # suspension rewrites to the remaining time.
            backlog_us = (
                self._sanitize_backlog_us
                - self.timing.cell_duration_us(kind)
            )
            self._sanitize_backlog_us = backlog_us
            self.sanitize_backlog.record(now, backlog_us)
        if segment.follow is not None:
            target, duration, stage = segment.follow
            self._enqueue(
                self.servers[target],
                Segment(
                    segment.kind, stage, duration, segment.request,
                    sanitize=segment.sanitize,
                ),
            )
        if segment.successor is not None:
            target, next_segment = segment.successor
            next_segment.ready = True
            successor_server = self.servers[target]
            if successor_server.current is None:
                self._start_next(successor_server)
        if segment.request is not None:
            segment.request.remaining -= 1
            if segment.request.remaining == 0:
                self._complete(segment.request)
        if server.pending_locks and server.idle:
            self._drain_locks(server)  # the idle window deferral waits for
        # tail of every completion: _start_next, inlined (the extra call
        # per event is measurable).  KEEP IN LOCKSTEP with _start_next.
        # The current-is-None guard stays: _drain_locks above may have
        # already restarted this server via _enqueue.
        queue = server.queue
        if queue and server.current is None:
            segment = queue[0] if self._fifo_queues else queue[0][2]
            if segment.ready:
                # lockstep: begin engine-start-segment
                if self._fifo_queues:
                    queue.popleft()
                else:
                    heapq.heappop(queue)
                self.queued_segments -= 1
                now = self.clock.now_us
                server.current = segment
                server.current_start_us = now
                end = now + segment.duration_us
                server.current_end_us = end
                token = server.token + 1
                server.token = token
                heap = self.heap  # EventHeap.schedule, inlined (as above)
                heapq.heappush(
                    heap._heap, (end, heap._seq, _EV_DONE, (server, token))
                )
                heap._seq += 1
                heap.pushed += 1
                # lockstep: end engine-start-segment

    def _complete(self, inflight: _InFlight) -> None:
        now = self.clock.now_us
        self.completed += 1
        self.in_flight -= 1
        self.depth.record(now, self.in_flight)
        if self._tel is not None:
            self._tel.bus.complete(
                "sim.request",
                inflight.op.value,
                ts_us=inflight.arrival_us,
                dur_us=now - inflight.arrival_us,
                tid="host",
                args={"index": inflight.index},
            )
        if inflight.index >= self.steady_start:
            self.latency.add(inflight.op, now - inflight.arrival_us)
        if self.arrivals.closed_loop and self._next_index < self._limit:
            self.heap.schedule(now, _EV_ARRIVAL, self._next_index)
            self._next_index += 1

    # ------------------------------------------------------------------
    # checkpoint support (repro.checkpoint)
    # ------------------------------------------------------------------
    def assert_quiescent(self) -> None:
        """Raise unless the engine is at a checkpointable boundary."""
        if self.heap.entries():
            raise RuntimeError("engine not quiescent: events pending")
        if self.in_flight:
            raise RuntimeError(
                f"engine not quiescent: {self.in_flight} request(s) in flight"
            )
        if self.queued_segments:
            raise RuntimeError(
                f"engine not quiescent: {self.queued_segments} queued segment(s)"
            )
        for server in self.servers:
            if server.current is not None or server.queue or server.pending_locks:
                raise RuntimeError(
                    f"engine not quiescent: server {server.key} busy"
                )

    def state_dict(self) -> dict[str, object]:
        """Checkpoint payload; only valid at a quiescent boundary (the
        heap and server queues hold live object graphs that need not --
        and therefore must not -- be serialized)."""
        self.assert_quiescent()
        return {
            "clock_us": self.clock.now_us,
            "heap_seq": self.heap._seq,
            "heap_pushed": self.heap.pushed,
            "seq": self._seq,
            "next_index": self._next_index,
            "arrival_time_us": self._arrival_time_us,
            "completed": self.completed,
            "queued_segments_peak": self.queued_segments_peak,
            "deferred_lock_pulses": self.deferred_lock_pulses,
            "lock_drains": self.lock_drains,
            "suspensions": self.suspensions,
            "servers": [
                {"busy_us": s.busy_us, "token": s.token} for s in self.servers
            ],
            "latency": self.latency.state_dict(),
            "depth": self.depth.state_dict(),
            "arrivals": self.arrivals.state_dict(),
            "sanitize_backlog": self.sanitize_backlog.state_dict(),
            # float residue of the add/subtract stream (quiescent means
            # logically zero, but resumed runs must keep the exact value
            # so their series stay byte-identical to uninterrupted ones)
            "sanitize_backlog_us": self._sanitize_backlog_us,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.assert_quiescent()
        if len(state["servers"]) != len(self.servers):
            raise ValueError("engine checkpoint does not match topology")
        self.clock.now_us = state["clock_us"]
        self.heap._seq = state["heap_seq"]
        self.heap.pushed = state["heap_pushed"]
        self._seq = state["seq"]
        self._next_index = state["next_index"]
        self._arrival_time_us = state["arrival_time_us"]
        self.completed = state["completed"]
        self.queued_segments_peak = state["queued_segments_peak"]
        self.deferred_lock_pulses = state["deferred_lock_pulses"]
        self.lock_drains = state["lock_drains"]
        self.suspensions = state["suspensions"]
        for server, payload in zip(self.servers, state["servers"]):
            server.busy_us = payload["busy_us"]
            server.token = payload["token"]
        self.latency.load_state_dict(state["latency"])
        self.depth.load_state_dict(state["depth"])
        self.arrivals.load_state_dict(state["arrivals"])
        self.sanitize_backlog.load_state_dict(state["sanitize_backlog"])
        self._sanitize_backlog_us = state["sanitize_backlog_us"]

    # ------------------------------------------------------------------
    def _report(self) -> EngineReport:
        elapsed = self.clock.now_us
        utilization = {
            server.key: (server.busy_us / elapsed if elapsed > 0.0 else 0.0)
            for server in self.servers
        }
        checker = self.ssd.ftl.checker
        checker_summary: dict[str, int] = {}
        if checker is not None:
            checker_summary = dict(checker.summary())
            # a violation raises InvariantViolation and aborts the run,
            # so reaching the report means the sanitizer saw none.
            checker_summary["violations"] = 0
        return EngineReport(
            completed=self.completed,
            sim_elapsed_us=elapsed,
            open_loop_elapsed_us=self.timing.elapsed_us,
            events=self.heap.pushed,
            latency=self.latency.summary(),
            utilization=utilization,
            queue_depth=self.depth.downsample(),
            in_flight_peak=self.depth.peak,
            mean_in_flight=self.depth.mean_level(elapsed),
            queued_segments_peak=self.queued_segments_peak,
            deferred_lock_pulses=self.deferred_lock_pulses,
            lock_drains=self.lock_drains,
            suspensions=self.suspensions,
            checker=checker_summary,
            sanitize_backlog=self.sanitize_backlog.downsample(),
            sanitize_backlog_peak_us=self.sanitize_backlog.peak,
            sanitize_backlog_mean_us=self.sanitize_backlog.mean_level(elapsed),
        )
