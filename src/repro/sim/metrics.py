"""Tail-latency accounting and queue-depth time series.

The point of the closed-loop engine is the distribution, not the mean:
one erSSD relocation storm shows up as a p99.9 spike that average IOPS
hides entirely.  Percentiles use the nearest-rank method (deterministic,
no interpolation ambiguity across platforms), and every summary is a
plain dict of floats so reports serialize byte-identically for the
same-seed determinism guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.request import RequestOp

# the shared nearest-rank implementation and report-order percentile
# list live in repro.telemetry.histogram; re-exported here because the
# sim package's public API predates the telemetry layer.
from repro.telemetry.histogram import (  # lint: disable=SIM14 -- pure math helpers re-exported; sim's public API predates the telemetry layer
    PERCENTILES,
    percentile,
    summarize,
)

__all__ = [
    "PERCENTILES",
    "percentile",
    "LatencyRecorder",
    "DepthSeries",
    "WorkSeries",
]


@dataclass
class LatencyRecorder:
    """End-to-end request latency samples, grouped by request class."""

    samples: dict[RequestOp, list[float]] = field(
        default_factory=lambda: {op: [] for op in RequestOp}
    )

    def add(self, op: RequestOp, latency_us: float) -> None:
        if latency_us < 0.0:
            raise ValueError("latency cannot be negative")
        self.samples[op].append(latency_us)

    def count(self, op: RequestOp | None = None) -> int:
        if op is not None:
            return len(self.samples[op])
        return sum(len(v) for v in self.samples.values())

    # ------------------------------------------------------------------
    def summary_for(self, op: RequestOp | None) -> dict[str, float]:
        if op is not None:
            data = self.samples[op]
        else:
            data = []
            for values in self.samples.values():
                data.extend(values)
        return summarize(data)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-class and combined percentile report (JSON-ready)."""
        out = {op.value: self.summary_for(op) for op in RequestOp}
        out["all"] = self.summary_for(None)
        return out

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, list[float]]:
        """Checkpoint payload, keyed by the op's string value."""
        return {op.value: list(values) for op, values in self.samples.items()}

    def load_state_dict(self, state: dict[str, list[float]]) -> None:
        self.samples = {op: list(state.get(op.value, [])) for op in RequestOp}


@dataclass
class DepthSeries:
    """Time series of an integer level (queue depth, requests in flight).

    Records a point whenever the level changes; consecutive same-level
    points coalesce.  ``downsample`` bounds report size.
    """

    times_us: list[float] = field(default_factory=list)
    levels: list[int] = field(default_factory=list)

    def record(self, time_us: float, level: int) -> None:
        if self.levels and self.levels[-1] == level:
            return
        if self.times_us and time_us == self.times_us[-1]:
            # same-instant transition: keep only the final level
            self.levels[-1] = level
            self._recoalesce()
            return
        self.times_us.append(time_us)
        self.levels.append(level)

    def _recoalesce(self) -> None:
        if len(self.levels) >= 2 and self.levels[-1] == self.levels[-2]:
            self.times_us.pop()
            self.levels.pop()

    def __len__(self) -> int:
        return len(self.times_us)

    @property
    def peak(self) -> int:
        return max(self.levels, default=0)

    def mean_level(self, until_us: float) -> float:
        """Time-weighted average level over [0, until_us]."""
        if until_us <= 0.0 or not self.times_us:
            return 0.0
        total = 0.0
        for i, (t, level) in enumerate(zip(self.times_us, self.levels)):
            end = self.times_us[i + 1] if i + 1 < len(self.times_us) else until_us
            end = min(end, until_us)
            if end > t:
                total += (end - t) * level
        return total / until_us

    def state_dict(self) -> dict[str, list[float] | list[int]]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {"times_us": list(self.times_us), "levels": list(self.levels)}

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.times_us = list(state["times_us"])
        self.levels = list(state["levels"])

    def downsample(self, max_points: int = 256) -> list[tuple[float, int]]:
        """At most ``max_points`` (time, level) pairs, ends preserved."""
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        points = list(zip(self.times_us, self.levels))
        if len(points) <= max_points:
            return points
        step = (len(points) - 1) / (max_points - 1)
        picked = [points[round(i * step)] for i in range(max_points - 1)]
        picked.append(points[-1])
        return picked


@dataclass
class WorkSeries:
    """Time series of a float level (queued work in microseconds).

    The float sibling of :class:`DepthSeries`: a step function sampled
    whenever the level changes.  Used for the engine's sanitization
    backlog -- the flash-time of sanitization-class operations (lock
    pulses, scrubs, erases) queued or deferred but not yet serviced --
    where levels are sums of op durations, not integer counts.
    """

    times_us: list[float] = field(default_factory=list)
    levels: list[float] = field(default_factory=list)

    def record(self, time_us: float, level: float) -> None:
        if self.levels and self.levels[-1] == level:
            return
        if self.times_us and time_us == self.times_us[-1]:
            # same-instant transition: keep only the final level
            self.levels[-1] = level
            if len(self.levels) >= 2 and self.levels[-1] == self.levels[-2]:
                self.times_us.pop()
                self.levels.pop()
            return
        self.times_us.append(time_us)
        self.levels.append(level)

    def __len__(self) -> int:
        return len(self.times_us)

    @property
    def peak(self) -> float:
        return max(self.levels, default=0.0)

    def mean_level(self, until_us: float) -> float:
        """Time-weighted average level over [0, until_us]."""
        if until_us <= 0.0 or not self.times_us:
            return 0.0
        total = 0.0
        for i, (t, level) in enumerate(zip(self.times_us, self.levels)):
            end = self.times_us[i + 1] if i + 1 < len(self.times_us) else until_us
            end = min(end, until_us)
            if end > t:
                total += (end - t) * level
        return total / until_us

    def state_dict(self) -> dict[str, list[float]]:
        """Checkpoint payload (see :mod:`repro.checkpoint`)."""
        return {"times_us": list(self.times_us), "levels": list(self.levels)}

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.times_us = list(state["times_us"])
        self.levels = list(state["levels"])

    def downsample(self, max_points: int = 256) -> list[tuple[float, float]]:
        """At most ``max_points`` (time, level) pairs, ends preserved."""
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        points = list(zip(self.times_us, self.levels))
        if len(points) <= max_points:
            return points
        step = (len(points) - 1) / (max_points - 1)
        picked = [points[round(i * step)] for i in range(max_points - 1)]
        picked.append(points[-1])
        return picked
