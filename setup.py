"""Setuptools shim for environments without PEP-517 build isolation.

All project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` / ``python setup.py develop``
on machines without the ``wheel`` package or network access.
"""

from setuptools import setup

setup()
