"""C1/C2 sanitization auditing across all SSD variants."""

import random

import pytest

from repro.security.audit import SanitizationAuditor, collect_live_versions
from repro.ssd.device import SSD
from repro.ssd.request import trim, write

SANITIZING = ("secSSD", "secSSD_nobLock", "erSSD", "scrSSD")


def churn(ssd, seed=0, span=48, rounds=2):
    rng = random.Random(seed)
    deleted_tags = set()
    for i in range(ssd.config.physical_pages * rounds // 1):
        lpa = rng.randrange(span)
        if rng.random() < 0.05:
            ssd.submit(trim(lpa))
        else:
            ssd.submit(write(lpa, tag=f"file-{lpa % 8}", secure=True))
    # delete files 0 and 1 entirely
    for lpa in range(span):
        if lpa % 8 in (0, 1):
            ssd.submit(trim(lpa))
    deleted_tags = {"file-0", "file-1"}
    return deleted_tags


class TestC1DeletedFiles:
    @pytest.mark.parametrize("variant", SANITIZING)
    def test_sanitizing_variants_pass(self, tiny_config, variant):
        ssd = SSD(tiny_config, variant)
        deleted = churn(ssd)
        report = SanitizationAuditor(ssd).audit_deleted_files(deleted)
        assert report.clean, report.violations[:3]

    def test_baseline_fails(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        deleted = churn(ssd)
        report = SanitizationAuditor(ssd).audit_deleted_files(deleted)
        assert not report.clean

    def test_report_counts(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        deleted = churn(ssd)
        report = SanitizationAuditor(ssd).audit_deleted_files(deleted)
        assert report.checked_files == len(deleted)


class TestC2UpdatedData:
    @pytest.mark.parametrize("variant", SANITIZING)
    def test_sanitizing_variants_pass(self, tiny_config, variant):
        ssd = SSD(tiny_config, variant)
        churn(ssd, seed=1)
        live = collect_live_versions(ssd)
        report = SanitizationAuditor(ssd).audit_updated_lpas(live)
        assert report.clean, report.violations[:3]

    def test_baseline_fails(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        churn(ssd, seed=1)
        live = collect_live_versions(ssd)
        report = SanitizationAuditor(ssd).audit_updated_lpas(live)
        assert not report.clean

    def test_violations_identify_pages(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0, tag="f", secure=True))
        ssd.submit(write(0, tag="f", secure=True))
        live = collect_live_versions(ssd)
        report = SanitizationAuditor(ssd).audit_updated_lpas(live)
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.condition == "C2"
        assert v.payload[0] == 0


class TestExposure:
    def test_exposure_summary(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0, tag="a"))
        ssd.submit(write(1, tag="b"))
        summary = SanitizationAuditor(ssd).exposure_summary()
        assert summary["readable_pages"] == 2
        assert summary["distinct_files"] == 2

    def test_secure_device_exposes_less(self, tiny_config):
        base, sec = SSD(tiny_config, "baseline"), SSD(tiny_config, "secSSD")
        for ssd in (base, sec):
            churn(ssd, seed=2)
        exp_base = SanitizationAuditor(base).exposure_summary()
        exp_sec = SanitizationAuditor(sec).exposure_summary()
        assert exp_sec["readable_pages"] < exp_base["readable_pages"]


class TestLiveVersionCollection:
    def test_matches_host_view(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        ssd.submit(write(3, tag="f", secure=True))
        ssd.submit(write(3, tag="f", secure=True))
        live = collect_live_versions(ssd)
        assert set(live) == {3}
        assert live[3][0] == 3
