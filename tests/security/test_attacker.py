"""The Section 5.1 forensic attacker."""

import pytest

from repro.security.attacker import RawChipAttacker
from repro.ssd.device import SSD
from repro.ssd.request import trim, write


@pytest.fixture
def insecure(tiny_config):
    return SSD(tiny_config, "baseline")


@pytest.fixture
def secure(tiny_config):
    return SSD(tiny_config, "secSSD")


class TestAgainstInsecureSSD:
    def test_recovers_stale_versions(self, insecure):
        insecure.submit(write(0, tag="f"))
        insecure.submit(write(0, tag="f"))
        attacker = RawChipAttacker(insecure)
        versions = attacker.stale_versions_of(0)
        assert len(versions) == 2  # both the stale and the live copy

    def test_recovers_deleted_file(self, insecure):
        insecure.submit(write(0, tag="secret-file"))
        insecure.submit(trim(0))
        attacker = RawChipAttacker(insecure)
        assert attacker.recover_file("secret-file")

    def test_image_contains_everything_programmed(self, insecure):
        for lpa in range(8):
            insecure.submit(write(lpa, tag="f"))
        image = RawChipAttacker(insecure).image_device()
        assert len(image) == 8
        assert image.file_tags() == {"f"}


class TestAgainstSecureSSD:
    def test_cannot_recover_stale_versions(self, secure):
        secure.submit(write(0, tag="f", secure=True))
        secure.submit(write(0, tag="f", secure=True))
        versions = RawChipAttacker(secure).stale_versions_of(0)
        assert len(versions) == 1  # only the live copy

    def test_cannot_recover_deleted_file(self, secure):
        secure.submit(write(0, tag="secret-file", secure=True))
        secure.submit(trim(0))
        assert not RawChipAttacker(secure).recover_file("secret-file")

    def test_insecure_data_remains_exposed(self, secure):
        """O_INSEC data is explicitly out of the sanitization contract."""
        secure.submit(write(0, tag="public", secure=False))
        secure.submit(write(0, tag="public", secure=False))
        versions = RawChipAttacker(secure).stale_versions_of(0)
        assert len(versions) == 2


class TestImageHelpers:
    def test_recovered_page_accessors(self, insecure):
        insecure.submit(write(5, tag="t"))
        image = RawChipAttacker(insecure).image_device()
        page = image.pages[0]
        assert page.lpa == 5
        assert page.file_tag == "t"

    def test_non_tuple_payload_has_no_metadata(self, tiny_config):
        ssd = SSD(tiny_config, "scrSSD")
        ssd.submit(write(0, secure=True))
        ssd.submit(write(0, secure=True))  # scrubs the stale wordline
        image = RawChipAttacker(ssd).image_device()
        scrubbed = [p for p in image.pages if not isinstance(p.payload, tuple)]
        for page in scrubbed:
            assert page.lpa is None
            assert page.file_tag is None
