"""Command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.blocks == 20
        assert args.seed == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig14", "--blocks", "10", "--wordlines", "8", "--seed", "9",
             "--multiplier", "0.5"]
        )
        assert (args.blocks, args.wordlines, args.seed) == (10, 8, 9)
        assert args.multiplier == 0.5

    def test_lint_options(self):
        args = build_parser().parse_args(["lint", "a.py", "b.py", "--no-hints"])
        assert args.command == "lint"
        assert args.paths == ["a.py", "b.py"]
        assert args.no_hints

    def test_check_options(self):
        args = build_parser().parse_args(
            ["check", "--variants", "secSSD", "--workloads", "Mobile",
             "--interval", "7", "--blocks", "8"]
        )
        assert args.command == "check"
        assert args.variants == ["secSSD"]
        assert args.workloads == ["Mobile"]
        assert (args.interval, args.blocks) == (7, 8)


class TestExecution:
    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "selected: (ii)" in out

    def test_fig12(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "selected: (ii)" in out
        assert "region-i" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "longest open interval" in capsys.readouterr().out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "plock_vs_program" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "MLC" in out and "TLC" in out

    def test_fig14_small(self, capsys):
        code = main(
            ["fig14", "--blocks", "10", "--wordlines", "4", "--multiplier", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "secSSD" in out and "erSSD" in out

    def test_table1_small(self, capsys):
        code = main(
            ["table1", "--blocks", "10", "--wordlines", "4", "--multiplier", "0.5"]
        )
        assert code == 0
        assert "DBServer" in capsys.readouterr().out

    def test_lint_shipped_tree_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_flags_violations_with_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "flash" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(x):\n    return x == 1.0\n", encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM04" in out and "bad.py:2" in out

    def test_check_small(self, capsys):
        code = main(
            ["check", "--blocks", "8", "--wordlines", "4",
             "--multiplier", "0.2", "--interval", "11",
             "--variants", "secSSD", "--workloads", "Mobile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok   secSSD/Mobile" in out and "clean" in out

    def test_check_unknown_variant_rejected(self, capsys):
        assert main(["check", "--variants", "nopeSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out

    def test_lint_missing_path_clean_error(self, capsys):
        assert main(["lint", "/definitely/not/there.py"]) == 2
        assert "not a python file or directory" in capsys.readouterr().out

    def test_torture_options_and_defaults(self):
        args = build_parser().parse_args(
            ["torture", "--variants", "secSSD", "--rates", "0.01",
             "--window", "5", "--ops", "40", "--json"]
        )
        assert args.command == "torture"
        assert (args.blocks, args.wordlines) == (12, 4)  # own small scale
        assert args.rates == [0.01]
        assert args.json
        # the torture defaults must not leak into the shared scale parent
        assert build_parser().parse_args(["fig14"]).blocks == 20

    def test_torture_small(self, capsys):
        code = main(
            ["torture", "--blocks", "8", "--wordlines", "4", "--ops", "40",
             "--rates", "0.01", "--window", "2", "--variants", "baseline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "torture: PASS" in out

    def test_torture_unknown_variant_rejected(self, capsys):
        assert main(["torture", "--variants", "nopeSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out


class TestSimulateCommand:
    def test_options_and_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.workload == "MailServer"
        assert args.policy == "auto"
        assert args.qd == 32
        assert args.rate is None
        args = build_parser().parse_args(
            ["simulate", "--workload", "Mobile", "--variants", "secSSD",
             "--policy", "defer", "--qd", "8", "--rate", "5000", "--bursty"]
        )
        assert args.variants == ["secSSD"]
        assert (args.policy, args.qd) == ("defer", 8)
        assert args.rate == 5000.0 and args.bursty

    def test_simulate_small(self, tmp_path, capsys):
        out_path = tmp_path / "sim.json"
        code = main(
            ["simulate", "--workload", "Mobile",
             "--variants", "baseline", "secSSD",
             "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
             "--qd", "8", "--json", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Host-read latency under closed-loop queueing" in out
        assert "baseline" in out and "secSSD" in out
        import json

        payload = json.loads(out_path.read_text())
        assert set(payload) == {"baseline", "secSSD"}
        assert payload["secSSD"]["policy"]["name"] == "defer"

    def test_unknown_variant_rejected(self, capsys):
        assert main(["simulate", "--variants", "ghostSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, capsys):
        assert main(["simulate", "--policy", "lifo"]) == 2
        assert "unknown policy" in capsys.readouterr().out


class TestBenchCommand:
    def test_options_and_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.workload == "Mobile"
        assert args.policy == "fifo"
        assert args.repeats == 3
        assert args.out == "BENCH_sim.json"

    def test_bench_small(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_sim.json"
        code = main(
            ["bench", "--workload", "Mobile", "--variants", "baseline",
             "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
             "--qd", "8", "--repeats", "1", "--out", str(out_path)]
        )
        assert code == 0
        assert "benchmark artifact written" in capsys.readouterr().out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["bench"] == "sim_engine"
        assert payload["runs"][0]["variant"] == "baseline"
        assert payload["runs"][0]["events_per_sec"] > 0
        assert payload["best_events_per_sec"] > 0

    def test_bench_unknown_variant_rejected(self, capsys):
        assert main(["bench", "--variants", "ghostSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out


class TestFleetCommand:
    SMALL = ["fleet", "--devices", "2", "--tenants", "60", "--shard", "2",
             "--variants", "secSSD", "--storm", "deletion"]

    def test_options_and_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.command == "fleet"
        assert args.devices == 16
        assert args.tenants == 2000
        assert args.storm == "none"
        assert args.jobs == 1
        assert args.resume is None
        assert args.stop_after_shards is None

    def test_fleet_small_with_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "fleet.json"
        assert main(self.SMALL + ["--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "fleet: 2 devices" in printed
        assert "secSSD" in printed
        payload = json.loads(out.read_text())
        assert payload["config"]["devices"] == 2
        assert "secSSD" in payload["variants"]

    def test_fleet_unknown_variant_rejected(self, capsys):
        assert main(["fleet", "--variants", "ghostSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out

    def test_fleet_unknown_storm_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--storm", "hurricane"])

    def test_fleet_stop_and_resume(self, tmp_path, capsys):
        resume = tmp_path / "campaign"
        cmd = self.SMALL + ["--resume", str(resume)]
        assert main(cmd + ["--stop-after-shards", "1"]) == 0
        assert "stopped after 1 shard" in capsys.readouterr().out
        assert main(cmd) == 0
        assert "cached" in capsys.readouterr().out

    def test_bench_jobs_and_compare_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.jobs == 1
        assert args.compare is None
        assert args.tolerance == 0.05
        assert args.verbose_compare is False

    def test_verbose_compare_prints_passing_rows(self, tmp_path, capsys):
        base = ["bench", "--workload", "Mobile", "--variants", "baseline",
                "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
                "--qd", "8", "--repeats", "1"]
        baseline_path = tmp_path / "baseline.json"
        assert main(base + ["--out", str(baseline_path)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "BENCH_sim.json"
        compare = base + ["--out", str(out_path),
                          "--compare", str(baseline_path)]
        # compact default: clean gate collapses to the verdict line
        assert main(compare) == 0
        compact = capsys.readouterr().out
        assert "bench compare" in compact
        assert "ok   Mobile/baseline" not in compact
        assert main(compare + ["--verbose-compare"]) == 0
        verbose = capsys.readouterr().out
        assert "ok   Mobile/baseline" in verbose

    def test_bench_compare_gate(self, tmp_path, capsys):
        import json

        base = ["bench", "--workload", "Mobile", "--variants", "baseline",
                "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
                "--qd", "8", "--repeats", "1"]
        baseline_path = tmp_path / "baseline.json"
        assert main(base + ["--out", str(baseline_path)]) == 0
        capsys.readouterr()
        # same parameters vs the fresh baseline: the gate passes
        out_path = tmp_path / "BENCH_sim.json"
        assert main(base + ["--out", str(out_path),
                            "--compare", str(baseline_path)]) == 0
        assert "bench compare" in capsys.readouterr().out
        # inject a synthetic regression into the baseline: simulated
        # IOPS 50 % above what the run can reach -> gate must fail
        payload = json.loads(baseline_path.read_text())
        payload["runs"][0]["iops"] = payload["runs"][0]["iops"] * 1.5
        baseline_path.write_text(json.dumps(payload))
        assert main(base + ["--out", str(out_path),
                            "--compare", str(baseline_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_compare_and_out_same_path(self, tmp_path, capsys):
        """CI gates and refreshes one file: the baseline must be read
        before the artifact overwrites it (not compared to itself)."""
        import json

        base = ["bench", "--workload", "Mobile", "--variants", "baseline",
                "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
                "--qd", "8", "--repeats", "1"]
        path = tmp_path / "BENCH_sim.json"
        assert main(base + ["--out", str(path)]) == 0
        capsys.readouterr()
        # poison the committed baseline with an unreachable IOPS target;
        # if the fresh artifact were written first, the gate would
        # compare the run against itself and wrongly pass
        payload = json.loads(path.read_text())
        payload["runs"][0]["iops"] = payload["runs"][0]["iops"] * 1.5
        path.write_text(json.dumps(payload))
        assert main(base + ["--out", str(path),
                            "--compare", str(path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # and the artifact was still refreshed (real metrics, not the
        # poisoned baseline)
        refreshed = json.loads(path.read_text())
        assert refreshed["runs"][0]["iops"] < payload["runs"][0]["iops"]


class TestProfileCommand:
    def test_options_and_defaults(self):
        args = build_parser().parse_args(["profile", "--", "fig9"])
        assert args.command == "profile"
        assert args.sort == "cumulative"
        assert args.limit == 25
        assert args.cmd == ["--", "fig9"]

    def test_profiles_a_command(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_sim.json"
        code = main(
            ["profile", "--limit", "5", "--",
             "bench", "--workload", "Mobile", "--variants", "baseline",
             "--blocks", "8", "--wordlines", "4", "--multiplier", "0.3",
             "--qd", "8", "--repeats", "1", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "benchmark artifact written" in out  # the command itself ran
        assert "cumulative" in out                  # the pstats report
        assert "function calls" in out
        assert out_path.exists()

    def test_propagates_exit_status(self, capsys):
        assert main(["profile", "--", "bench", "--variants", "ghostSSD"]) == 2

    def test_empty_command_rejected(self, capsys):
        assert main(["profile"]) == 2
        assert "give a repro command" in capsys.readouterr().out

    def test_cannot_profile_itself(self, capsys):
        assert main(["profile", "--", "profile", "fig9"]) == 2
        assert "cannot profile itself" in capsys.readouterr().out


class TestTraceCommand:
    def test_options_and_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.workload == "MailServer"
        assert args.policy == "auto"
        assert args.out == "trace.json"
        assert args.jsonl is None
        assert args.capacity == 65536
        assert args.sample is None
        args = build_parser().parse_args(
            ["trace", "--variants", "secSSD", "erSSD", "--out", "t.json",
             "--jsonl", "t.jsonl", "--capacity", "1024",
             "--sample", "ftl.page=8", "sim.service=4"]
        )
        assert args.variants == ["secSSD", "erSSD"]
        assert args.capacity == 1024
        assert args.sample == ["ftl.page=8", "sim.service=4"]

    def test_trace_small_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.telemetry.export import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--blocks", "8", "--wordlines", "4",
             "--multiplier", "0.5", "--qd", "8",
             "--out", str(out_path), "--jsonl", str(jsonl_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry event streams" in out
        assert str(out_path) in out and str(jsonl_path) in out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        # nested GC and lock-drain spans are present in the view
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"gc", "lock_batch", "lock_drain"} <= names
        assert jsonl_path.exists()

    def test_trace_sampling_thins_category(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = main(
            ["trace", "--blocks", "8", "--wordlines", "4",
             "--multiplier", "0.3", "--qd", "8",
             "--sample", "sim.service=1000", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        services = [
            e for e in payload["traceEvents"] if e.get("cat") == "sim.service"
        ]
        assert 0 < len(services) < 50

    def test_unknown_variant_rejected(self, capsys):
        assert main(["trace", "--variants", "ghostSSD"]) == 2
        assert "unknown variant" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, capsys):
        assert main(["trace", "--policy", "lifo"]) == 2
        assert "unknown policy" in capsys.readouterr().out

    def test_bad_sample_spec_rejected(self, capsys):
        assert main(["trace", "--sample", "nocategory"]) == 2
        assert "bad sample spec" in capsys.readouterr().out


class TestTraceOutFlags:
    def test_simulate_trace_out(self, tmp_path, capsys):
        import json

        from repro.telemetry.export import validate_chrome_trace

        out_path = tmp_path / "sim_trace.json"
        code = main(
            ["simulate", "--workload", "MailServer", "--variants", "secSSD",
             "--blocks", "8", "--wordlines", "4", "--multiplier", "0.5",
             "--qd", "8", "--trace-out", str(out_path)]
        )
        assert code == 0
        assert f"trace written to {out_path}" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"gc", "lock_batch", "lock_drain"} <= names

    def test_torture_trace_out(self, tmp_path, capsys):
        import json

        from repro.telemetry.export import validate_chrome_trace

        out_path = tmp_path / "tort_trace.json"
        code = main(
            ["torture", "--blocks", "8", "--wordlines", "4", "--ops", "60",
             "--rates", "0.01", "--window", "1", "--variants", "secSSD",
             "--trace-out", str(out_path)]
        )
        assert code == 0
        assert f"trace written to {out_path}" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert any(
            e.get("cat") == "fault" for e in payload["traceEvents"]
        )


class TestAuditCommand:
    def test_options_and_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.command == "audit"
        assert args.trace is None
        assert args.workload == "MailServer"
        assert args.variant == "secSSD"
        assert args.cert is None and args.cert_out is None
        assert args.pages_per_block is None

    def test_trace_mode_options(self):
        args = build_parser().parse_args(
            ["audit", "t.jsonl", "--cert", "c.json", "--pages-per-block", "4"]
        )
        assert args.trace == "t.jsonl"
        assert args.cert == "c.json"
        assert args.pages_per_block == 4

    @staticmethod
    def _archive(tmp_path):
        from repro.analysis.tracing import run_traced_study
        from repro.ssd import scaled_config
        from repro.telemetry.export import write_jsonl

        config = scaled_config(blocks_per_chip=8, wordlines_per_block=4)
        (run,) = run_traced_study(
            config, "MailServer", ("secSSD",), seed=3,
            write_multiplier=0.5, capacity=1 << 20,
        ).values()
        path = tmp_path / "secSSD.jsonl"
        write_jsonl(path, run.telemetry.bus.events, header=run.header())
        return path

    def test_live_run_audit_writes_certificate(self, tmp_path, capsys):
        import json

        cert_path = tmp_path / "cert.json"
        code = main(
            ["audit", "--blocks", "8", "--wordlines", "4",
             "--multiplier", "0.5", "--variant", "secSSD",
             "--cert-out", str(cert_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "device_probe=yes" in out
        cert = json.loads(cert_path.read_text())
        assert cert["format"] == "evanesco-cert/1"
        assert "signature" in cert

    def test_offline_audit_passes_then_fails_after_tamper(
        self, tmp_path, capsys
    ):
        import json

        path = self._archive(tmp_path)
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "device_probe=no" in out

        # delete one sanitize event (line 0 is the disclosure header)
        lines = path.read_text().splitlines()
        victim = next(
            i for i, line in enumerate(lines[1:], start=1)
            if json.loads(line).get("cat") == "ftl.sanitize"
        )
        del lines[victim]
        path.write_text("\n".join(lines) + "\n")
        assert main(["audit", str(path)]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "event-count-mismatch" in out

    def test_unreadable_trace_is_usage_error(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "missing.jsonl")]) == 2
        assert "audit:" in capsys.readouterr().out

    def test_unknown_variant_rejected(self, capsys):
        assert main(["audit", "--variant", "nope"]) == 2
        assert "unknown variant" in capsys.readouterr().out
