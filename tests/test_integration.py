"""End-to-end integration scenarios across the full stack.

Each test tells one complete story from the paper: host software writes
files through the file system, the FTL and chips do their work, and the
forensic attacker (or profiler) observes the outcome.
"""

import pytest

from repro.host.fileapi import OpenFlags
from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer, append, create, delete, write
from repro.host.vertrace import VerTrace
from repro.security.attacker import RawChipAttacker
from repro.security.audit import SanitizationAuditor, collect_live_versions
from repro.ssd.device import SSD
from repro.workloads import WORKLOADS


class TestSecureDeleteStory:
    """Section 1's motivating scenario: deleting a private photo."""

    def test_photo_unrecoverable_after_delete_on_secssd(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        fs = FileSystem(ssd)
        fs.create("photo.jpg")
        fs.append("photo.jpg", 12)
        fid = fs.lookup("photo.jpg").fid
        fs.delete("photo.jpg")
        assert not RawChipAttacker(ssd).recover_file(fid)

    def test_photo_recoverable_after_delete_on_plain_ssd(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        fs = FileSystem(ssd)
        fs.create("photo.jpg")
        fs.append("photo.jpg", 12)
        fid = fs.lookup("photo.jpg").fid
        fs.delete("photo.jpg")
        recovered = RawChipAttacker(ssd).recover_file(fid)
        assert len(recovered) == 12  # every page of the "deleted" photo

    def test_update_leaves_no_old_version(self, tiny_config):
        """C2: editing a document must destroy the previous contents."""
        ssd = SSD(tiny_config, "secSSD")
        fs = FileSystem(ssd)
        fs.create("doc")
        fs.append("doc", 4)
        fs.overwrite_whole("doc")
        fs.overwrite_whole("doc")
        live = collect_live_versions(ssd)
        report = SanitizationAuditor(ssd).audit_updated_lpas(live)
        assert report.clean


class TestSelectiveSecurity:
    """Section 6: O_INSEC opts a file out, saving lock work."""

    def test_insec_files_cost_no_locks(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        fs = FileSystem(ssd)
        fs.create("cache", OpenFlags.O_INSEC)
        fs.append("cache", 8)
        for _ in range(4):
            fs.overwrite_whole("cache")
        assert ssd.stats.plocks == 0
        assert ssd.stats.block_locks == 0

    def test_mixed_files_lock_only_secure_traffic(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        fs = FileSystem(ssd)
        fs.create("secret")
        fs.create("cache", OpenFlags.O_INSEC)
        fs.append("secret", 4)
        fs.append("cache", 4)
        fs.overwrite_whole("secret")
        fs.overwrite_whole("cache")
        assert ssd.stats.plocks == 4  # only the secret file's stale pages


class TestWorkloadsOnEveryVariant:
    @pytest.mark.parametrize("variant", ("secSSD", "erSSD", "scrSSD"))
    def test_mailserver_runs_clean(self, variant):
        from repro.ssd.config import scaled_config

        config = scaled_config(blocks_per_chip=12, wordlines_per_block=8)
        ssd = SSD(config, variant)
        fs = FileSystem(ssd)
        gen = WORKLOADS["MailServer"](capacity_pages=config.logical_pages, seed=5)
        TraceReplayer(fs).replay(gen.ops(write_multiplier=0.5))
        live = collect_live_versions(ssd)
        assert SanitizationAuditor(ssd).audit_updated_lpas(live).clean


class TestProfilerOnSecureDevice:
    def test_vertrace_confirms_zero_exposure(self, tiny_config):
        vt = VerTrace.for_config(tiny_config, track_all=True)
        ssd = SSD(tiny_config, "secSSD", observer=vt)
        rep = TraceReplayer(FileSystem(ssd))
        rep.replay(
            [
                create("f"),
                append("f", 6),
                write("f", 0, 3),
                write("f", 0, 3),
                delete("f"),
            ]
        )
        vt.close()
        summary = vt.summarize()
        assert summary["mv"]["vaf_max"] == 0.0
        assert summary["mv"]["tinsec_max"] == 0.0


class TestDeviceLongevity:
    def test_stack_survives_sustained_churn(self, tiny_config):
        """The whole stack stays consistent over many GC generations."""
        import random

        ssd = SSD(tiny_config, "secSSD")
        fs = FileSystem(ssd)
        rng = random.Random(0)
        names = []
        for i in range(12):
            name = f"file-{i}"
            fs.create(name)
            fs.append(name, 8)
            names.append(name)
        for round_no in range(tiny_config.physical_pages // 4):
            name = rng.choice(names)
            fs.overwrite_whole(name)
        assert ssd.stats.gc_invocations > 0
        # every file still reads back its own pages
        for name in names:
            info = fs.lookup(name)
            for lpa in info.lpas:
                gppa = ssd.ftl.mapped_gppa(lpa)
                chip_id, ppn = ssd.ftl.split_gppa(gppa)
                data = ssd.ftl.chips[chip_id].read_page(ppn).data
                assert data[0] == lpa
                assert data[1] == info.fid
