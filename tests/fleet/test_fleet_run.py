"""Campaign determinism: serial == parallel == resumed, byte for byte."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.fleet import FleetConfig, plan_tasks, run_fleet
from repro.fleet.tenants import compile_fleet

#: small but structurally honest: 8 devices over 4 shards, 2 variants,
#: a deletion storm -- enough to exercise merge order, shard seeding,
#: and the resume path without minutes of runtime.
CAMPAIGN = FleetConfig(
    devices=8,
    tenants=240,
    variants=("erSSD", "secSSD"),
    storm="deletion",
    devices_per_shard=2,
)


def _dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


@pytest.fixture(scope="module")
def serial_report() -> dict:
    run = run_fleet(CAMPAIGN)
    assert run is not None
    return run.report


class TestByteIdentity:
    def test_parallel_matches_serial(self, serial_report):
        parallel = run_fleet(CAMPAIGN, jobs=2)
        assert _dumps(parallel.report) == _dumps(serial_report)

    def test_resumed_matches_uninterrupted(self, serial_report, tmp_path):
        resume = tmp_path / "campaign"
        # injected kill: run only the first 3 of 8 shards, then resume
        assert run_fleet(CAMPAIGN, resume_dir=resume, stop_after_shards=3) is None
        resumed = run_fleet(CAMPAIGN, jobs=2, resume_dir=resume)
        assert resumed.cached_shards >= 3
        assert _dumps(resumed.report) == _dumps(serial_report)

    def test_report_is_json_round_trippable(self, serial_report):
        assert json.loads(_dumps(serial_report)) == serial_report


class TestShardPlan:
    def test_canonical_order_variants_outer(self):
        specs = compile_fleet(CAMPAIGN)
        tasks = plan_tasks(CAMPAIGN, specs)
        assert [t.index for t in tasks] == list(range(len(tasks)))
        assert [t.variant for t in tasks[:4]] == ["erSSD"] * 4
        assert [t.variant for t in tasks[4:]] == ["secSSD"] * 4

    def test_seeds_unique_per_cell(self):
        tasks = plan_tasks(CAMPAIGN, compile_fleet(CAMPAIGN))
        seeds = [t.seed for t in tasks]
        assert len(set(seeds)) == len(seeds)

    def test_fingerprint_in_cache_key(self):
        tasks = plan_tasks(CAMPAIGN, compile_fleet(CAMPAIGN))
        fingerprint = CAMPAIGN.fingerprint()
        assert all(fingerprint in t.workload for t in tasks)


class TestHeadlineResult:
    def test_secssd_storm_backlog_below_erssd(self, serial_report):
        # the acceptance criterion: under a fleet-wide deletion storm,
        # lock-based sanitization keeps the queued-sanitization backlog
        # measurably below the erase-based design's relocation storms
        variants = serial_report["variants"]
        sec = variants["secSSD"]["backlog_peak_us"]
        er = variants["erSSD"]["backlog_peak_us"]
        assert er > 0.0
        assert sec < 0.5 * er, (sec, er)

    def test_backlog_fully_drains(self, serial_report):
        for data in serial_report["variants"].values():
            for device in data["devices_detail"]:
                curve = device["backlog"]
                if curve:
                    assert abs(curve[-1][1]) < 1e-6

    def test_metrics_snapshot_published(self, serial_report):
        metrics = serial_report["metrics"]
        gauges = metrics["gauges"]
        assert "fleet.secSSD.backlog_peak_us" in gauges
        assert "fleet.erSSD.backlog_peak_us" in gauges

    def test_storm_counters_aggregated(self, serial_report):
        for data in serial_report["variants"].values():
            assert data["storms"]["storm_files_deleted"] > 0


class TestAccountingOutsideReport:
    def test_no_wall_clock_or_shard_accounting_in_report(self, serial_report):
        text = _dumps(serial_report)
        for forbidden in ("wall_", "cached_shards", "retried_shards"):
            assert forbidden not in text

    def test_config_echoed_with_fingerprint(self, serial_report):
        echoed = serial_report["config"]
        assert echoed["devices"] == CAMPAIGN.devices
        assert echoed["fingerprint"] == CAMPAIGN.fingerprint()


class TestStormContrast:
    def test_storm_raises_secssd_lock_cost_over_quiet(self):
        quiet_cfg = dataclasses.replace(
            CAMPAIGN,
            devices=2,
            tenants=80,
            variants=("secSSD",),
            storm="none",
            devices_per_shard=2,
        )
        storm_cfg = dataclasses.replace(
            quiet_cfg, storm="deletion", storm_fraction=0.5
        )
        quiet = run_fleet(quiet_cfg).report["variants"]["secSSD"]
        storm = run_fleet(storm_cfg).report["variants"]["secSSD"]
        assert (
            storm["stats"]["host_trims"] > quiet["stats"]["host_trims"]
        )
