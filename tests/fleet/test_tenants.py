"""Tenant population, placement, and per-device compilation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet.tenants import (
    TAIL_TENANT,
    FleetConfig,
    TenantWorkload,
    _build_ring,
    compile_fleet,
    place_tenant,
    tenant_weight,
)


class TestFleetConfig:
    def test_defaults_validate(self):
        FleetConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("devices", 0),
            ("tenants", 0),
            ("zipf_s", 0.0),
            ("spread", 0),
            ("storm", "hurricane"),
            ("storm_fraction", 1.5),
            ("secure_fraction", -0.1),
            ("variants", ()),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(FleetConfig(), **{field: value})

    def test_fingerprint_tracks_every_field(self):
        base = FleetConfig()
        assert base.fingerprint() == FleetConfig().fingerprint()
        changed = dataclasses.replace(base, tenants=base.tenants + 1)
        assert changed.fingerprint() != base.fingerprint()


class TestPlacement:
    def test_compile_is_deterministic(self):
        cfg = FleetConfig(devices=8, tenants=500)
        assert compile_fleet(cfg) == compile_fleet(cfg)

    def test_every_tenant_lands_on_exactly_one_device(self):
        cfg = FleetConfig(devices=8, tenants=500, max_active_tenants=10**9)
        specs = compile_fleet(cfg)
        seen = [slot.tenant for spec in specs for slot in spec.slots]
        assert sorted(seen) == list(range(cfg.tenants))

    def test_growth_moves_about_one_in_k_tenants_to_the_new_device(self):
        # the consistent-hash contract: adding a device to a k-device
        # fleet relocates ~1/(k+1) of tenants, every one of them TO the
        # new device -- nobody shuffles between surviving devices.
        old = FleetConfig(devices=8, tenants=4000, spread=1)
        new = dataclasses.replace(old, devices=9)
        old_ring, new_ring = _build_ring(old), _build_ring(new)
        moved = 0
        for tenant in range(old.tenants):
            before = place_tenant(old, old_ring, tenant)
            after = place_tenant(new, new_ring, tenant)
            if before != after:
                moved += 1
                assert after == 8, "moved tenant must land on the new device"
        fraction = moved / old.tenants
        assert 0.03 < fraction < 0.25, fraction

    def test_spread_routes_across_candidates(self):
        cfg = FleetConfig(devices=8, tenants=2000, spread=3)
        ring = _build_ring(cfg)
        homes = {place_tenant(cfg, ring, t) for t in range(cfg.tenants)}
        assert homes == set(range(cfg.devices))


class TestCompiledSpecs:
    def test_zipf_weights_are_heavy_tailed(self):
        cfg = FleetConfig()
        assert tenant_weight(cfg, 0) > tenant_weight(cfg, 1)
        assert tenant_weight(cfg, 0) / tenant_weight(cfg, 99) > 50

    def test_tail_aggregates_beyond_max_active(self):
        cfg = FleetConfig(devices=2, tenants=500, max_active_tenants=8)
        specs = compile_fleet(cfg)
        for spec in specs:
            assert len(spec.slots) <= cfg.max_active_tenants
            assert spec.tail_tenants > 0
            assert spec.tail_weight > 0.0
            assert TAIL_TENANT not in {slot.tenant for slot in spec.slots}
            assert spec.tenants == len(spec.slots) + spec.tail_tenants

    def test_device_seed_is_variant_independent(self):
        # the spec (and therefore the captured trace) depends only on
        # (cfg, device): every variant replays identical host traffic
        cfg = FleetConfig(devices=4, tenants=100)
        other = dataclasses.replace(cfg, variants=("secSSD",))
        assert [s.seed for s in compile_fleet(cfg)] == [
            s.seed for s in compile_fleet(other)
        ]

    def test_traffic_scale_bounded(self):
        cfg = FleetConfig(devices=8, tenants=500)
        for spec in compile_fleet(cfg):
            assert 0.25 <= spec.traffic_scale <= 4.0


class TestTenantWorkload:
    def test_trace_is_deterministic(self):
        from repro.fleet.scheduler import device_config
        from repro.sim.runner import capture_generator_trace

        cfg = FleetConfig(devices=2, tenants=60)
        spec = compile_fleet(cfg)[0]
        config = device_config(cfg)
        traces = []
        for _ in range(2):
            generator = TenantWorkload(cfg, spec, config.logical_pages)
            traces.append(capture_generator_trace(config, generator, 400))
        assert traces[0] == traces[1]
