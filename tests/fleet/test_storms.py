"""Storm schedules and seeded membership."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet.scheduler import device_config
from repro.fleet.storms import StormEvent, build_schedule, storm_affects
from repro.fleet.tenants import FleetConfig, TenantWorkload, compile_fleet
from repro.sim.runner import capture_generator_trace


class TestSchedule:
    def test_none_is_empty(self):
        assert build_schedule("none") == ()
        assert build_schedule("deletion", count=0) == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_schedule("hurricane")

    def test_events_evenly_spaced_and_ordered(self):
        events = build_schedule("deletion", count=3, tenant_fraction=0.5)
        assert [e.index for e in events] == [0, 1, 2]
        ats = [e.at_fraction for e in events]
        assert ats == sorted(ats)
        assert all(0.0 < a < 1.0 for a in ats)
        assert all(e.kind == "deletion" for e in events)
        assert all(e.tenant_fraction == 0.5 for e in events)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            StormEvent(0, "deletion", at_fraction=1.5, tenant_fraction=0.5)
        with pytest.raises(ValueError):
            StormEvent(0, "deletion", at_fraction=0.5, tenant_fraction=0.0)


class TestMembership:
    def test_deterministic(self):
        storm = build_schedule("deletion", tenant_fraction=0.3)[0]
        hits = [storm_affects(1, storm, t) for t in range(200)]
        assert hits == [storm_affects(1, storm, t) for t in range(200)]

    def test_fraction_is_approximately_honored(self):
        storm = build_schedule("deletion", tenant_fraction=0.25)[0]
        hits = sum(storm_affects(1, storm, t) for t in range(4000))
        assert 0.18 < hits / 4000 < 0.32

    def test_storms_select_different_tenants(self):
        a, b = build_schedule("deletion", count=2, tenant_fraction=0.5)
        hits_a = {t for t in range(500) if storm_affects(1, a, t)}
        hits_b = {t for t in range(500) if storm_affects(1, b, t)}
        assert hits_a != hits_b


class TestStormTraffic:
    def _trace(self, cfg: FleetConfig):
        spec = compile_fleet(cfg)[0]
        config = device_config(cfg)
        generator = TenantWorkload(cfg, spec, config.logical_pages)
        requests, steady = capture_generator_trace(config, generator, 600)
        return generator, requests, steady

    def test_deletion_storm_fires_and_deletes(self):
        cfg = FleetConfig(devices=2, tenants=120, storm="deletion")
        generator, _, _ = self._trace(cfg)
        counters = generator.storm_counters()
        assert counters["storms_fired"] == 1
        assert counters["storm_tenants_hit"] > 0
        assert counters["storm_pages_deleted"] > 0

    def test_storm_adds_trims_over_quiet_run(self):
        quiet = FleetConfig(devices=2, tenants=120)
        stormy = dataclasses.replace(
            quiet, storm="deletion", storm_fraction=0.5
        )
        _, quiet_reqs, qs = self._trace(quiet)
        _, storm_reqs, ss = self._trace(stormy)
        trims = lambda reqs, start: sum(  # noqa: E731
            1 for r in reqs[start:] if r.op.value == "trim"
        )
        assert trims(storm_reqs, ss) > trims(quiet_reqs, qs)

    def test_churn_replaces_tenants(self):
        cfg = FleetConfig(devices=2, tenants=120, storm="churn")
        generator, _, _ = self._trace(cfg)
        counters = generator.storm_counters()
        assert counters["storms_fired"] == 1
        assert counters["storm_tenants_hit"] > 0
