"""scrSSD: wordline scrubbing with sibling relocation."""

import random

import pytest

from repro.flash.chip import SCRUBBED_DATA
from repro.ftl.mapping import UNMAPPED
from repro.ftl.scrub_based import ScrubBasedFtl
from repro.ssd.request import trim, write


@pytest.fixture
def ftl(tiny_config):
    return ScrubBasedFtl(tiny_config)


class TestScrubOnInvalidate:
    def test_update_scrubs_old_wordline(self, ftl):
        ftl.submit(write(0, secure=True))
        old = ftl.mapped_gppa(0)
        chip_id, ppn = ftl.split_gppa(old)
        ftl.submit(write(0, secure=True))
        assert ftl.stats.scrubs >= 1
        assert ftl.chips[chip_id].read_page(ppn).data == SCRUBBED_DATA

    def test_stale_data_not_recoverable(self, ftl):
        ftl.submit(write(0, secure=True))
        ftl.submit(write(0, secure=True))
        versions = [
            v
            for v in ftl.raw_device_dump().values()
            if isinstance(v, tuple) and v[0] == 0
        ]
        assert len(versions) == 1

    def test_siblings_relocated_not_lost(self, ftl):
        """Valid pages of the scrubbed wordline move before the pulse."""
        for lpa in range(12):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(4))
        for lpa in range(12):
            if lpa == 4:
                continue
            gppa = ftl.mapped_gppa(lpa)
            assert gppa != UNMAPPED
            chip_id, ppn = ftl.split_gppa(gppa)
            assert ftl.chips[chip_id].read_page(ppn).data[0] == lpa

    def test_insecure_invalidation_not_scrubbed(self, ftl):
        ftl.submit(write(0, secure=False))
        ftl.submit(write(0, secure=False))
        assert ftl.stats.scrubs == 0

    def test_one_scrub_per_wordline_per_batch(self, ftl, tiny_config):
        """Trimming all three sibling pages costs a single scrub pulse."""
        ppw = tiny_config.geometry.pages_per_wordline
        n = tiny_config.n_chips * ppw
        for lpa in range(n):
            ftl.submit(write(lpa, secure=True))
        before = ftl.stats.scrubs
        ftl.submit(trim(0, npages=n))
        per_chip_wordlines = ftl.stats.scrubs - before
        assert per_chip_wordlines <= tiny_config.n_chips


class TestRelocationCosts:
    def test_waf_above_baseline(self, ftl, tiny_config):
        rng = random.Random(0)
        span = int(tiny_config.logical_pages * 0.5)
        for _ in range(span * 3):
            ftl.submit(write(rng.randrange(span), secure=True))
        assert ftl.stats.relocation_copies > 0
        assert 1.0 < ftl.stats.waf < 15.0

    def test_padding_keeps_program_order(self, ftl):
        """Scrubbing inside the open block pads its unwritten tail pages --
        without tripping the chips' program-order checks."""
        ftl.submit(write(0, secure=True))
        # old copy of LPA 0 lands at the very start of a fresh block;
        # overwriting immediately scrubs a wordline in the open block
        ftl.submit(write(0, secure=True))
        ftl.submit(write(1, secure=True))
        assert ftl.mapped_gppa(1) != UNMAPPED

    def test_gc_victim_wordlines_scrubbed_without_relocation(self, ftl, tiny_config):
        rng = random.Random(1)
        span = int(tiny_config.logical_pages * 0.8)
        for _ in range(tiny_config.physical_pages * 2):
            ftl.submit(write(rng.randrange(span), secure=True))
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.scrubs > 0


class TestDeviceStaysFunctional:
    def test_long_churn_preserves_live_data(self, ftl, tiny_config):
        rng = random.Random(3)
        span = int(tiny_config.logical_pages * 0.6)
        for _ in range(tiny_config.physical_pages * 2):
            ftl.submit(write(rng.randrange(span), secure=True))
        for lpa in range(span):
            gppa = ftl.mapped_gppa(lpa)
            if gppa == UNMAPPED:
                continue
            chip_id, ppn = ftl.split_gppa(gppa)
            data = ftl.chips[chip_id].read_page(ppn).data
            assert data != SCRUBBED_DATA
            assert data[0] == lpa
