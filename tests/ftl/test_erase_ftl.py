"""erSSD: relocate-and-erase immediate sanitization."""

import random

import pytest

from repro.ftl.erase_based import EraseBasedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ssd.request import trim, write


@pytest.fixture
def ftl(tiny_config):
    return EraseBasedFtl(tiny_config)


class TestImmediateErase:
    def test_update_erases_block_immediately(self, ftl):
        ftl.submit(write(0, secure=True))
        old = ftl.mapped_gppa(0)
        chip_id, ppn = ftl.split_gppa(old)
        block_index = ftl.geometry.split_ppn(ppn)[0]
        ftl.submit(write(0, secure=True))
        # the old block is physically erased -- no data survives there
        block = ftl.chips[chip_id].blocks[block_index]
        assert ftl.stats.sanitize_erases >= 1
        assert all(
            page.is_erased or page.data is None or page.data[0] != 0
            for page in block.pages
            if page.data != (0, None, 0)
        )
        assert (0, None, 0) not in ftl.raw_device_dump().values()

    def test_erase_relocates_live_neighbours(self, ftl):
        """Live pages sharing the victim block must survive the erase."""
        for lpa in range(8):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0))
        for lpa in range(1, 8):
            gppa = ftl.mapped_gppa(lpa)
            assert gppa != UNMAPPED
            chip_id, ppn = ftl.split_gppa(gppa)
            data = ftl.chips[chip_id].read_page(ppn).data
            assert data[0] == lpa
        assert ftl.stats.relocation_copies > 0

    def test_insecure_invalidation_does_not_erase(self, ftl):
        ftl.submit(write(0, secure=False))
        ftl.submit(write(0, secure=False))
        assert ftl.stats.sanitize_erases == 0

    def test_active_block_can_be_sanitized(self, ftl):
        """Overwriting data whose stale copy sits in the open block."""
        ftl.submit(write(0, secure=True))
        ftl.submit(write(0, secure=True))  # old copy is in the active block
        ftl.submit(write(1, secure=True))  # device still functional
        assert ftl.mapped_gppa(1) != UNMAPPED


class TestCosts:
    def test_waf_explodes_relative_to_block_size(self, ftl, tiny_config):
        rng = random.Random(0)
        span = int(tiny_config.logical_pages * 0.8)
        for _ in range(span * 2):
            ftl.submit(write(rng.randrange(span), secure=True))
        # every secured overwrite triggers a block relocation storm
        assert ftl.stats.waf > 5.0
        assert ftl.stats.flash_erases > span / 2

    def test_gc_erases_eagerly(self, ftl):
        """erSSD victims never sit in the lazy-erase queue (footnote 15)."""
        rng = random.Random(0)
        for _ in range(ftl.config.physical_pages):
            ftl.submit(write(rng.randrange(64), secure=True))
        assert not ftl._pending_victims


class TestSanitizationGuarantee:
    def test_no_stale_versions_recoverable(self, ftl):
        for _ in range(4):
            ftl.submit(write(3, secure=True))
        versions = [
            v
            for v in ftl.raw_device_dump().values()
            if isinstance(v, tuple) and v[0] == 3
        ]
        assert len(versions) == 1

    def test_deleted_file_unrecoverable(self, ftl):
        ftl.submit(write(9, secure=True, tag="f"))
        ftl.submit(trim(9))
        assert not any(
            isinstance(v, tuple) and v[1] == "f"
            for v in ftl.raw_device_dump().values()
        )
