"""GC victim-selection policies."""

import random

import pytest

from repro.ftl.base import PageMappedFtl
from repro.ftl.gc_policies import (
    GC_POLICIES,
    VictimView,
    cost_benefit,
    fifo,
    greedy,
    policy_by_name,
    wear_aware_greedy,
)
from repro.ssd.config import SSDConfig
from repro.ssd.request import write


def view(invalid=5, live=5, ppb=10, erases=0, last=0, now=100):
    return VictimView(
        global_block=0,
        invalid_pages=invalid,
        live_pages=live,
        pages_per_block=ppb,
        erase_count=erases,
        last_program_seq=last,
        now_seq=now,
    )


class TestPolicyFunctions:
    def test_greedy_prefers_more_invalid(self):
        assert greedy(view(invalid=8)) > greedy(view(invalid=3))

    def test_greedy_ignores_age(self):
        assert greedy(view(last=0)) == greedy(view(last=90))

    def test_cost_benefit_prefers_emptier(self):
        assert cost_benefit(view(live=1)) > cost_benefit(view(live=9))

    def test_cost_benefit_prefers_older_at_equal_utilization(self):
        assert cost_benefit(view(last=0)) > cost_benefit(view(last=90))

    def test_cost_benefit_rejects_full_block(self):
        assert cost_benefit(view(live=10, invalid=0)) < 0

    def test_fifo_is_pure_age(self):
        assert fifo(view(last=0)) > fifo(view(last=50))
        assert fifo(view(invalid=1, last=0)) == fifo(view(invalid=9, last=0))

    def test_wear_aware_prefers_less_worn_on_tie(self):
        fresh = wear_aware_greedy(view(invalid=5, erases=1))
        worn = wear_aware_greedy(view(invalid=5, erases=500))
        assert fresh > worn

    def test_wear_aware_never_outweighs_a_page(self):
        worn_more_invalid = wear_aware_greedy(view(invalid=6, erases=999))
        fresh_less_invalid = wear_aware_greedy(view(invalid=5, erases=0))
        assert worn_more_invalid > fresh_less_invalid

    def test_view_properties(self):
        v = view(invalid=3, live=7, ppb=10, last=40, now=100)
        assert v.utilization == pytest.approx(0.7)
        assert v.age == 60.0


class TestRegistry:
    def test_policy_by_name(self):
        for name in GC_POLICIES:
            assert callable(policy_by_name(name))

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown GC policy"):
            policy_by_name("magic")

    def test_config_validates_policy(self, small_geometry):
        with pytest.raises(ValueError):
            SSDConfig(geometry=small_geometry, gc_policy="magic")


class TestPoliciesInTheFtl:
    def _churn(self, ftl, seed=0):
        rng = random.Random(seed)
        span = int(ftl.config.logical_pages * 0.85)
        for _ in range(ftl.config.physical_pages * 3):
            ftl.submit(write(rng.randrange(span)))
        return ftl

    @pytest.mark.parametrize("policy", sorted(GC_POLICIES))
    def test_all_policies_make_progress(self, small_geometry, policy):
        cfg = SSDConfig(
            n_channels=1,
            chips_per_channel=2,
            geometry=small_geometry,
            overprovision=0.2,
            gc_policy=policy,
        )
        ftl = self._churn(PageMappedFtl(cfg))
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.flash_erases > 0

    def test_greedy_beats_fifo_on_waf(self, small_geometry):
        """Liveness-blind FIFO must copy more than greedy."""

        def waf(policy):
            cfg = SSDConfig(
                n_channels=1,
                chips_per_channel=2,
                geometry=small_geometry,
                overprovision=0.2,
                gc_policy=policy,
            )
            return self._churn(PageMappedFtl(cfg)).stats.waf

        assert waf("greedy") <= waf("fifo")

    def test_wear_aware_levels_wear(self, small_geometry):
        """Skewed traffic: wear-aware spreads erases more evenly."""
        from repro.analysis.lifetime import WearStats

        def wear_cv(policy):
            cfg = SSDConfig(
                n_channels=1,
                chips_per_channel=2,
                geometry=small_geometry,
                overprovision=0.2,
                gc_policy=policy,
            )
            ftl = PageMappedFtl(cfg)
            rng = random.Random(1)
            # hot/cold split: 90 % of writes to 20 % of the space
            span = int(cfg.logical_pages * 0.85)
            hot = max(1, span // 5)
            for lpa in range(span):
                ftl.submit(write(lpa))
            for _ in range(cfg.physical_pages * 3):
                lpa = rng.randrange(hot) if rng.random() < 0.9 else rng.randrange(span)
                ftl.submit(write(lpa))
            return WearStats.from_ftl(ftl).cv

        assert wear_cv("wear-aware") <= wear_cv("greedy") + 0.05
