"""L2P mapping table."""

import pytest

from repro.ftl.mapping import L2PTable, UNMAPPED


@pytest.fixture
def table():
    return L2PTable(logical_pages=8, physical_pages=16)


class TestMapping:
    def test_initially_unmapped(self, table):
        for lpa in range(8):
            assert table.lookup(lpa) == UNMAPPED
            assert not table.is_mapped(lpa)

    def test_map_and_lookup(self, table):
        table.map(0, 5)
        assert table.lookup(0) == 5
        assert table.reverse(5) == 0

    def test_remap_returns_old(self, table):
        table.map(0, 5)
        old = table.map(0, 6)
        assert old == 5
        assert table.lookup(0) == 6
        assert table.reverse(5) == UNMAPPED

    def test_map_fresh_returns_unmapped(self, table):
        assert table.map(0, 5) == UNMAPPED

    def test_unmap(self, table):
        table.map(0, 5)
        assert table.unmap(0) == 5
        assert table.lookup(0) == UNMAPPED
        assert table.reverse(5) == UNMAPPED

    def test_unmap_unmapped(self, table):
        assert table.unmap(3) == UNMAPPED

    def test_mapped_count(self, table):
        table.map(0, 5)
        table.map(1, 6)
        assert table.mapped_count() == 2
        table.unmap(0)
        assert table.mapped_count() == 1


class TestIntegrity:
    def test_rejects_double_physical_use(self, table):
        """Two LPAs must never share one physical page."""
        table.map(0, 5)
        with pytest.raises(ValueError):
            table.map(1, 5)

    def test_bounds_checked(self, table):
        with pytest.raises(IndexError):
            table.lookup(8)
        with pytest.raises(IndexError):
            table.map(0, 16)
        with pytest.raises(IndexError):
            table.reverse(-17)

    def test_rejects_logical_larger_than_physical(self):
        with pytest.raises(ValueError):
            L2PTable(logical_pages=10, physical_pages=5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            L2PTable(0, 0)

    def test_bidirectional_consistency_under_churn(self, table):
        import random

        rng = random.Random(0)
        free = set(range(16))
        for _ in range(200):
            lpa = rng.randrange(8)
            if table.is_mapped(lpa):
                free.add(table.unmap(lpa))
            else:
                gppa = rng.choice(sorted(free))
                free.discard(gppa)
                table.map(lpa, gppa)
            # invariant: forward and reverse maps agree
            for lp in range(8):
                g = table.lookup(lp)
                if g != UNMAPPED:
                    assert table.reverse(g) == lp
