"""Property-based crash-consistency tests.

Hypothesis drives random op sequences, crashes the device at an
arbitrary point, recovers, and checks that recovery is safe (every
pre-crash live page is intact) and that on sanitizing variants no
sanitized data is resurrected.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.geometry import CellType, Geometry
from repro.ftl import FTL_VARIANTS
from repro.ftl.mapping import UNMAPPED
from repro.ftl.page_status import PageStatus
from repro.ftl.recovery import PowerLossRecovery
from repro.ssd.config import SSDConfig
from repro.ssd.request import trim, write


def make_config() -> SSDConfig:
    return SSDConfig(
        n_channels=1,
        chips_per_channel=2,
        geometry=Geometry(
            blocks_per_chip=10,
            wordlines_per_block=4,
            cell_type=CellType.TLC,
            cells_per_wordline=64,
        ),
        overprovision=0.3,
    )


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim"]),
        st.integers(min_value=0, max_value=23),
    ),
    min_size=1,
    max_size=80,
)


def run_and_crash(variant: str, ops, crash_at: int):
    ftl = FTL_VARIANTS[variant](make_config())
    live: dict[int, tuple] = {}
    for i, (kind, lpa) in enumerate(ops):
        if i == crash_at:
            break
        if kind == "write":
            ftl.submit(write(lpa, secure=True))
            gppa = ftl.mapped_gppa(lpa)
            chip_id, ppn = ftl.split_gppa(gppa)
            live[lpa] = ftl.chips[chip_id].read_page(ppn).data
        else:
            ftl.submit(trim(lpa))
            live.pop(lpa, None)
    recovery = PowerLossRecovery(ftl)
    recovery.simulate_power_loss()
    recovery.recover()
    return ftl, live


@pytest.mark.parametrize("variant", ("baseline", "secSSD", "erSSD", "scrSSD"))
@given(ops=ops_strategy, crash_frac=st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=10, deadline=None)
def test_recovery_preserves_live_data(variant, ops, crash_frac):
    crash_at = max(1, int(len(ops) * crash_frac))
    ftl, live = run_and_crash(variant, ops, crash_at)
    for lpa, payload in live.items():
        gppa = ftl.mapped_gppa(lpa)
        assert gppa != UNMAPPED, f"live lpa {lpa} lost in recovery"
        chip_id, ppn = ftl.split_gppa(gppa)
        assert ftl.chips[chip_id].read_page(ppn).data == payload


@given(ops=ops_strategy, crash_frac=st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=10, deadline=None)
def test_secssd_never_resurrects_sanitized_data(ops, crash_frac):
    crash_at = max(1, int(len(ops) * crash_frac))
    ftl, live = run_and_crash("secSSD", ops, crash_at)
    # after recovery, the attacker view contains exactly the live set
    dump = ftl.raw_device_dump()
    by_lpa: dict[int, list] = {}
    for payload in dump.values():
        if isinstance(payload, tuple) and len(payload) == 3:
            by_lpa.setdefault(payload[0], []).append(payload)
    assert set(by_lpa) == set(live)
    for lpa, versions in by_lpa.items():
        assert versions == [live[lpa]]


@given(ops=ops_strategy)
@settings(max_examples=10, deadline=None)
def test_recovery_restores_structural_invariants(ops):
    ftl, _ = run_and_crash("secSSD", ops, len(ops))
    mapped = 0
    for lpa in range(ftl.config.logical_pages):
        gppa = ftl.mapped_gppa(lpa)
        if gppa == UNMAPPED:
            continue
        mapped += 1
        assert ftl.l2p.reverse(gppa) == lpa
    counts = ftl.status.counts()
    assert counts[PageStatus.VALID] + counts[PageStatus.SECURED] == mapped
    assert sum(counts.values()) == ftl.config.physical_pages
