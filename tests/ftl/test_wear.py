"""P/E exhaustion, wear leveling, wear-aware allocation, wear coupling.

The device-aging subsystem's unit surface: ``pe_limit`` boundary
semantics on :class:`~repro.flash.block.Block`, the FTL's
scrub-then-retire handling of :class:`~repro.flash.errors.WearOutError`,
the normalized ``wear-aware`` GC tie-break, static wear leveling,
wear-aware dynamic allocation, and the :class:`~repro.flash.wear.
WearReadGate` coupling (off by default, deterministic when on).
"""

from __future__ import annotations

import random

import pytest

from repro.flash.block import Block, BlockState
from repro.flash.errors import UncorrectableError, WearOutError
from repro.flash.geometry import CellType, Geometry
from repro.flash.wear import WearReadGate
from repro.ftl.allocator import BlockAllocator, OutOfBlocksError
from repro.ftl.base import PageMappedFtl
from repro.ftl.gc_policies import (
    WEAR_TIEBREAK_CAP,
    VictimView,
    wear_aware_greedy,
)
from repro.ssd.config import scaled_config
from repro.ssd.request import read, write


def one_block_geometry() -> Geometry:
    return Geometry(
        blocks_per_chip=1,
        wordlines_per_block=1,
        cell_type=CellType.TLC,
        page_size_bytes=16 * 1024,
        cells_per_wordline=64,
    )


def wear_config(pe_limit, **kw):
    """The smallest device that survives full-span random traffic."""
    return scaled_config(
        blocks_per_chip=16,
        wordlines_per_block=4,
        n_channels=1,
        chips_per_channel=2,
        pe_limit=pe_limit,
        **kw,
    )


def fill_random(ftl, writes, seed=0, span=None):
    rng = random.Random(seed)
    span = span or ftl.config.logical_pages
    for _ in range(writes):
        ftl.submit(write(rng.randrange(span)))


def fill_hot_cold(ftl, writes, seed=0):
    """Fill once, then hammer a hot tenth: pins cold blocks at low wear."""
    rng = random.Random(seed)
    span = ftl.config.logical_pages
    hot = span // 10
    for lpa in range(span):
        ftl.submit(write(lpa))
    for _ in range(writes):
        if rng.random() < 0.95:
            ftl.submit(write(rng.randrange(hot)))
        else:
            ftl.submit(write(hot + rng.randrange(span - hot)))


def erase_counts(ftl):
    return [b.erase_count for chip in ftl.chips for b in chip.blocks]


class TestPeLimitBoundary:
    """``erase_count >= pe_limit`` refuses; the limit-th erase succeeds."""

    def test_block_erases_exactly_pe_limit_times(self):
        block = Block(one_block_geometry(), index=0, pe_limit=3)
        for _ in range(3):
            block.erase(0.0)
        assert block.erase_count == 3
        with pytest.raises(WearOutError):
            block.erase(0.0)

    def test_wearout_raises_before_any_mutation(self):
        block = Block(one_block_geometry(), index=0, pe_limit=1)
        block.erase(0.0)
        for offset in range(3):
            block.program(offset, f"v{offset}", None, 0.0)
        with pytest.raises(WearOutError):
            block.erase(0.0)
        # the refused erase left data and counters untouched
        assert block.erase_count == 1
        assert block.pages[0].data == "v0"

    def test_no_limit_means_unbounded(self):
        block = Block(one_block_geometry(), index=0)
        for _ in range(WEAR_TIEBREAK_CAP // 100_000):
            block.erase(0.0)

    def test_config_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            wear_config(pe_limit=0)


class TestWearOutRetirement:
    """P/E exhaustion funnels into the scrub-then-retire grown-bad flow."""

    @pytest.fixture
    def worn(self):
        """Write through the first wear-outs; tolerate end-of-life.

        Uniform traffic wears every block in near-lockstep, so the
        first WearOutError and pool exhaustion arrive close together
        (the death spiral the aging campaigns stop ahead of with
        ``first-wearout``); the retirement bookkeeping must be sound
        either way.
        """
        ftl = PageMappedFtl(wear_config(pe_limit=5))
        rng = random.Random(0)
        span = ftl.config.logical_pages
        try:
            for _ in range(50_000):
                ftl.submit(write(rng.randrange(span)))
                if ftl.stats.worn_out_blocks >= 2:
                    break
        except OutOfBlocksError:
            pass
        assert ftl.stats.worn_out_blocks >= 2
        return ftl

    def test_worn_blocks_are_retired_grown_bad(self, worn):
        retired = [
            (chip_id, block.index)
            for chip_id, chip in enumerate(worn.chips)
            for block in chip.blocks
            if block.state is BlockState.RETIRED
        ]
        assert len(retired) >= worn.stats.worn_out_blocks
        assert worn.stats.grown_bad_blocks >= worn.stats.worn_out_blocks
        for chip_id, index in retired:
            assert index in worn.alloc.retired_blocks(chip_id)

    def test_first_wearout_write_mark_is_recorded(self, worn):
        mark = worn.stats.host_writes_at_first_wearout
        assert 0 < mark <= worn.stats.host_writes

    def test_reads_stay_serviceable_after_wearout(self, worn):
        # the read path allocates nothing: even a write-dead device
        # still serves every mapped LPA (under the sanitizer fixture)
        rng = random.Random(99)
        for lpa in rng.sample(range(worn.config.logical_pages), 50):
            worn.submit(read(lpa))

    def test_fresh_device_records_no_wearout(self):
        ftl = PageMappedFtl(wear_config(pe_limit=None))
        fill_random(ftl, 500)
        assert ftl.stats.worn_out_blocks == 0
        assert ftl.stats.host_writes_at_first_wearout == -1

    def test_exhausting_every_block_dies_cleanly(self):
        ftl = PageMappedFtl(wear_config(pe_limit=2))
        with pytest.raises(OutOfBlocksError):
            fill_random(ftl, 50_000)


class TestWearAwareGreedyNormalization:
    """The tie-break term must never outvote a whole invalid page."""

    def view(self, invalid, erase_count, pe_limit=None):
        return VictimView(
            global_block=0,
            invalid_pages=invalid,
            live_pages=12 - invalid,
            pages_per_block=12,
            erase_count=erase_count,
            last_program_seq=0,
            now_seq=100,
            pe_limit=pe_limit,
        )

    @pytest.mark.parametrize("erase_count", [0, 999, 10**9, 10**15])
    def test_one_page_beats_any_wear_gap(self, erase_count):
        more_invalid = self.view(5, erase_count)
        less_invalid = self.view(4, 0)
        assert wear_aware_greedy(more_invalid) > wear_aware_greedy(less_invalid)

    @pytest.mark.parametrize("pe_limit", [1, 25, 10**6])
    def test_tie_term_stays_below_one_page_under_any_limit(self, pe_limit):
        # worst case: erase counts at (or absurdly beyond) the limit
        worst = self.view(5, 10**12, pe_limit=pe_limit)
        fresh = self.view(5, 0, pe_limit=pe_limit)
        gap = wear_aware_greedy(fresh) - wear_aware_greedy(worst)
        assert 0.0 < gap < 1.0

    def test_ties_break_toward_low_wear(self):
        worn = self.view(5, 10, pe_limit=25)
        fresh = self.view(5, 1, pe_limit=25)
        assert wear_aware_greedy(fresh) > wear_aware_greedy(worn)


class TestStaticWearLeveling:
    def test_threshold_triggers_migrations(self):
        ftl = PageMappedFtl(
            wear_config(pe_limit=None, wear_leveling_threshold=4)
        )
        fill_hot_cold(ftl, 2000)
        assert ftl.stats.wear_levelings > 0
        assert ftl.stats.wear_level_copies > 0

    def test_leveling_lifts_the_wear_floor(self):
        """Pinned cold blocks rejoin circulation: min wear rises, the
        max-min spread collapses, and the peak does not get worse."""
        plain = PageMappedFtl(wear_config(pe_limit=None))
        leveled = PageMappedFtl(
            wear_config(pe_limit=None, wear_leveling_threshold=4)
        )
        fill_hot_cold(plain, 2000)
        fill_hot_cold(leveled, 2000)
        before, after = erase_counts(plain), erase_counts(leveled)
        assert min(after) > min(before)
        assert max(after) - min(after) < max(before) - min(before)
        assert max(after) <= max(before)

    def test_disabled_by_default(self):
        ftl = PageMappedFtl(wear_config(pe_limit=None))
        fill_hot_cold(ftl, 2000)
        assert ftl.stats.wear_levelings == 0


class TestWearAwareAllocation:
    def test_allocator_opens_least_worn_block(self):
        alloc = BlockAllocator(1, 4, 4)
        wear = {0: 9, 1: 2, 2: 7, 3: 2}
        alloc.wear_fn = lambda chip_id, block: wear[block]
        block, offset, erase = alloc.allocate_page(0)
        assert (block, offset, erase) == (1, 0, None)  # least worn, lowest id

    def test_fifo_without_wear_fn(self):
        alloc = BlockAllocator(1, 4, 4)
        block, _, _ = alloc.allocate_page(0)
        assert block == 0

    def test_config_knob_wires_the_oracle(self):
        ftl = PageMappedFtl(
            wear_config(pe_limit=None, wear_aware_allocation=True)
        )
        assert ftl.alloc.wear_fn is not None
        assert ftl.alloc.wear_fn(0, 0) == ftl.chips[0].blocks[0].erase_count
        fill_random(ftl, 1500)  # integrity under the sanitizer fixture


class TestWearReadGate:
    def test_rber_is_monotonic_in_wear(self):
        gate = WearReadGate.for_cell_type(CellType.TLC)
        samples = [gate.expected_rber(pe) for pe in (0, 500, 1000, 2000)]
        assert samples == sorted(samples)

    def test_gate_trips_past_the_ecc_limit(self):
        gate = WearReadGate.for_cell_type(CellType.TLC)
        assert gate.readable(1000)
        assert not gate.readable(2000)

    def test_check_raises_uncorrectable_with_diagnostics(self):
        gate = WearReadGate.for_cell_type(CellType.TLC)
        block = Block(one_block_geometry(), index=0)
        block.erase_count = 5000
        with pytest.raises(UncorrectableError) as exc:
            gate.check_readable(block, ppn=7)
        assert exc.value.rber > gate.limit_rber

    def test_suspension_nests_and_restores(self):
        gate = WearReadGate.for_cell_type(CellType.TLC)
        block = Block(one_block_geometry(), index=0)
        block.erase_count = 5000
        with gate.suspended():
            with gate.suspended():
                gate.check_readable(block, ppn=0)
            gate.check_readable(block, ppn=0)
        with pytest.raises(UncorrectableError):
            gate.check_readable(block, ppn=0)

    def test_coupling_off_by_default(self):
        ftl = PageMappedFtl(wear_config(pe_limit=None))
        assert ftl.wear_gate is None
        assert all(chip.wear_gate is None for chip in ftl.chips)

    def test_coupling_wires_one_gate_to_every_chip(self):
        ftl = PageMappedFtl(wear_config(pe_limit=None, wear_coupling=True))
        assert ftl.wear_gate is not None
        assert all(chip.wear_gate is ftl.wear_gate for chip in ftl.chips)

    def test_coupling_is_inert_below_the_trip_point(self):
        """Same seed, gate on vs off: identical while wear is low."""
        from repro.sim.runner import simulate_workload

        plain = simulate_workload(
            wear_config(pe_limit=None), "Mobile", "secSSD",
            seed=3, write_multiplier=0.5,
        )
        gated = simulate_workload(
            wear_config(pe_limit=None, wear_coupling=True), "Mobile",
            "secSSD", seed=3, write_multiplier=0.5,
        )
        assert gated.report.to_dict() == plain.report.to_dict()
        assert gated.run.stats == plain.run.stats
