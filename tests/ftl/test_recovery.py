"""Power-loss recovery: L2P rebuild from spare-area annotations.

Includes the Evanesco-specific property: lock flags live in flash cells,
so sanitized data *stays* sanitized across power cycles -- the recovery
scan cannot even read it.
"""

import random

import pytest

from repro.faults import FaultKind, FaultPlan
from repro.flash.block import BlockState
from repro.flash.errors import PowerLossInjected
from repro.ftl import FTL_VARIANTS
from repro.ftl.mapping import UNMAPPED
from repro.ftl.page_status import PageStatus
from repro.ftl.recovery import PowerLossRecovery
from repro.ssd.request import trim, write


def churn(ftl, writes, seed=0, span=None, trims=False):
    rng = random.Random(seed)
    span = span or int(ftl.config.logical_pages * 0.8)
    for _ in range(writes):
        lpa = rng.randrange(span)
        if trims and rng.random() < 0.1:
            ftl.submit(trim(lpa))
        else:
            ftl.submit(write(lpa, secure=True))
    return ftl


def logical_snapshot(ftl):
    """Host-visible state: lpa -> payload of the live copy."""
    out = {}
    for lpa in range(ftl.config.logical_pages):
        gppa = ftl.mapped_gppa(lpa)
        if gppa == UNMAPPED:
            continue
        chip_id, ppn = ftl.split_gppa(gppa)
        out[lpa] = ftl.chips[chip_id].read_page(ppn).data
    return out


def crash_and_recover(ftl):
    recovery = PowerLossRecovery(ftl)
    recovery.simulate_power_loss()
    return recovery.recover()


class TestBasicRecovery:
    def test_live_data_recovered(self, tiny_config):
        ftl = churn(FTL_VARIANTS["baseline"](tiny_config), 200)
        before = logical_snapshot(ftl)
        report = crash_and_recover(ftl)
        after = logical_snapshot(ftl)
        assert after == before
        assert report.live_pages_recovered == len(before)

    def test_structural_invariants_hold_after_recovery(self, tiny_config):
        ftl = churn(FTL_VARIANTS["baseline"](tiny_config), 400, seed=2)
        crash_and_recover(ftl)
        live = 0
        for lpa in range(ftl.config.logical_pages):
            gppa = ftl.mapped_gppa(lpa)
            if gppa == UNMAPPED:
                continue
            live += 1
            assert ftl.l2p.reverse(gppa) == lpa
        counts = ftl.status.counts()
        assert counts[PageStatus.VALID] + counts[PageStatus.SECURED] == live
        assert sum(counts.values()) == ftl.config.physical_pages

    def test_device_still_writable_after_recovery(self, tiny_config):
        ftl = churn(FTL_VARIANTS["baseline"](tiny_config), 300, seed=3)
        crash_and_recover(ftl)
        churn(ftl, tiny_config.physical_pages, seed=4)  # includes GC cycles
        assert ftl.stats.gc_invocations > 0

    def test_newest_version_wins(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        for _ in range(5):
            ftl.submit(write(7, secure=False))
        crash_and_recover(ftl)
        gppa = ftl.mapped_gppa(7)
        chip_id, ppn = ftl.split_gppa(gppa)
        data = ftl.chips[chip_id].read_page(ppn).data
        assert data[2] == 4  # the fifth write's sequence number

    def test_open_blocks_are_padded(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        ftl.submit(write(0))  # leaves a half-open block on one chip
        report = crash_and_recover(ftl)
        assert report.blocks_padded >= 1
        assert report.pad_programs >= 1

    def test_secure_bit_restored(self, tiny_config):
        ftl = FTL_VARIANTS["secSSD"](tiny_config)
        ftl.submit(write(3, secure=True))
        ftl.submit(write(4, secure=False))
        crash_and_recover(ftl)
        assert ftl.status.get(ftl.mapped_gppa(3)) is PageStatus.SECURED
        assert ftl.status.get(ftl.mapped_gppa(4)) is PageStatus.VALID

    def test_write_seq_continues(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        for lpa in range(5):
            ftl.submit(write(lpa))
        crash_and_recover(ftl)
        ftl.submit(write(9))
        gppa = ftl.mapped_gppa(9)
        chip_id, ppn = ftl.split_gppa(gppa)
        assert ftl.chips[chip_id].read_page(ppn).data[2] >= 5


class TestCrashConsistencyOfSanitization:
    def test_baseline_resurrects_trimmed_data(self, tiny_config):
        """The insecurity, crash-flavoured: on a plain SSD a trimmed
        page's data comes back after power loss -- the FTL cannot tell a
        stale copy from a live one without its lost RAM state."""
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        ftl.submit(write(5, secure=True))
        ftl.submit(trim(5))
        assert ftl.mapped_gppa(5) == UNMAPPED
        crash_and_recover(ftl)
        assert ftl.mapped_gppa(5) != UNMAPPED  # ghost returned

    def test_secssd_locks_survive_power_loss(self, tiny_config):
        """Evanesco's flags are flash cells: sanitized data stays dead."""
        ftl = FTL_VARIANTS["secSSD"](tiny_config)
        ftl.submit(write(5, secure=True))
        ftl.submit(trim(5))
        report = crash_and_recover(ftl)
        assert ftl.mapped_gppa(5) == UNMAPPED  # no resurrection
        assert report.locked_pages_skipped >= 1

    def test_secssd_stale_versions_stay_dead(self, tiny_config):
        ftl = FTL_VARIANTS["secSSD"](tiny_config)
        for _ in range(4):
            ftl.submit(write(2, secure=True))
        crash_and_recover(ftl)
        dump = ftl.raw_device_dump()
        versions = [
            v for v in dump.values() if isinstance(v, tuple) and v[0] == 2
        ]
        assert len(versions) == 1

    @pytest.mark.parametrize("variant", sorted(FTL_VARIANTS))
    def test_all_variants_recover_cleanly(self, tiny_config, variant):
        ftl = churn(FTL_VARIANTS[variant](tiny_config), 150, seed=6, trims=True)
        before = logical_snapshot(ftl)
        crash_and_recover(ftl)
        after = logical_snapshot(ftl)
        # every pre-crash live page is back with identical content;
        # (baseline may additionally resurrect trimmed ghosts)
        for lpa, payload in before.items():
            assert after.get(lpa) == payload


class TestRecoveryFaultEdges:
    """Recovery under injected damage: torn pages, bLocked and bad blocks."""

    def test_torn_page_skipped_not_fatal(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config, faults=FaultPlan(seed=1))
        churn(ftl, 60, seed=3)
        injector = ftl.fault_injector
        # cut power at the very next chip command: the in-flight write's
        # program is interrupted mid-pulse, leaving a torn (ECC-dead) page
        injector._schedule[injector.op_index] = FaultKind.POWER_LOSS
        with pytest.raises(PowerLossInjected):
            churn(ftl, 20, seed=4)
        report = crash_and_recover(ftl)
        assert report.unreadable_pages_skipped == 1
        ftl.submit(write(0))  # the device still serves
        assert ftl.mapped_gppa(0) != UNMAPPED

    def test_fully_blocked_block_recovery(self, tiny_config):
        ftl = FTL_VARIANTS["secSSD"](tiny_config)
        pages = tiny_config.geometry.pages_per_block
        stripe = pages * len(ftl.chips)
        for lpa in range(stripe):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0, stripe))  # whole blocks die in one batch
        locked = [
            (chip_id, block.index)
            for chip_id, chip in enumerate(ftl.chips)
            for block in chip.blocks
            if chip.block_locked(block.index)
        ]
        assert locked  # batching chose bLock for the fully-dead blocks
        report = crash_and_recover(ftl)
        assert report.locked_pages_skipped >= pages
        for chip_id, block_index in locked:
            for offset in range(pages):
                ppn = block_index * pages + offset
                gppa = ftl.make_gppa(chip_id, ppn)
                assert ftl.status.get(gppa) is PageStatus.INVALID
                assert ftl.l2p.reverse(gppa) == UNMAPPED

    def test_double_recovery_after_padding(self, tiny_config):
        ftl = churn(FTL_VARIANTS["secSSD"](tiny_config), 90, seed=5)
        first = crash_and_recover(ftl)
        assert first.blocks_padded > 0  # half-open blocks were closed
        churn(ftl, 90, seed=6)
        before = logical_snapshot(ftl)
        second = crash_and_recover(ftl)
        assert logical_snapshot(ftl) == before
        assert second.live_pages_recovered == len(before)

    def test_grown_bad_table_relearned(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config, faults=FaultPlan(seed=9))
        stripe = tiny_config.geometry.pages_per_block * len(ftl.chips)
        for _ in range(2):  # fill then overwrite: block 0 fully invalid
            for lpa in range(stripe):
                ftl.submit(write(lpa))
        injector = ftl.fault_injector
        injector._schedule[injector.op_index] = FaultKind.ERASE_FAIL
        assert not ftl._erase_block_now(0, 0)  # scrubbed + retired
        gb = ftl.global_block(0, 0)
        assert gb in ftl._bad_blocks
        crash_and_recover(ftl)
        # the grown-bad table is RAM state: recovery must re-learn it
        # from the persistent RETIRED block marks
        assert gb in ftl._bad_blocks
        assert 0 in ftl.alloc.retired_blocks(0)
        assert ftl.chips[0].blocks[0].state is BlockState.RETIRED
        churn(ftl, 60, seed=7)  # and never allocate from it again
        assert ftl.chips[0].blocks[0].state is BlockState.RETIRED
