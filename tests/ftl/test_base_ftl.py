"""Baseline page-mapped FTL: write path, GC, lazy erase, data integrity."""

import random

import pytest

from repro.flash.block import BlockState
from repro.ftl.base import PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.page_status import PageStatus
from repro.ssd.request import read, trim, write


@pytest.fixture
def ftl(tiny_config):
    return PageMappedFtl(tiny_config)


def fill_random(ftl, writes, seed=0, span=None):
    rng = random.Random(seed)
    span = span or ftl.config.logical_pages
    for _ in range(writes):
        ftl.submit(write(rng.randrange(span)))


class TestWritePath:
    def test_write_maps_lpa(self, ftl):
        ftl.submit(write(3))
        assert ftl.mapped_gppa(3) != UNMAPPED

    def test_write_programs_flash(self, ftl):
        ftl.submit(write(3))
        gppa = ftl.mapped_gppa(3)
        chip_id, ppn = ftl.split_gppa(gppa)
        result = ftl.chips[chip_id].read_page(ppn)
        assert result.data == (3, None, 0)
        assert result.spare["lpa"] == 3

    def test_overwrite_invalidates_old(self, ftl):
        ftl.submit(write(3))
        old = ftl.mapped_gppa(3)
        ftl.submit(write(3))
        assert ftl.mapped_gppa(3) != old
        assert ftl.status.get(old) is PageStatus.INVALID

    def test_baseline_never_tracks_secure(self, ftl):
        ftl.submit(write(3, secure=True))
        assert ftl.status.get(ftl.mapped_gppa(3)) is PageStatus.VALID

    def test_writes_stripe_across_chips(self, ftl):
        for lpa in range(ftl.n_chips):
            ftl.submit(write(lpa))
        chips = {ftl.split_gppa(ftl.mapped_gppa(lpa))[0] for lpa in range(ftl.n_chips)}
        assert len(chips) == ftl.n_chips

    def test_multi_page_request(self, ftl):
        ftl.submit(write(0, npages=5))
        assert ftl.stats.host_writes == 5
        for lpa in range(5):
            assert ftl.mapped_gppa(lpa) != UNMAPPED

    def test_logical_time_ticks(self, ftl):
        ftl.submit(write(0, npages=2))  # 2 x 16 KiB = 8 ticks
        assert ftl.logical_time == 8


class TestReadTrim:
    def test_read_mapped_costs_flash_read(self, ftl):
        ftl.submit(write(0))
        ftl.submit(read(0))
        assert ftl.stats.flash_reads == 1

    def test_read_unmapped_is_free(self, ftl):
        ftl.submit(read(7))
        assert ftl.stats.host_reads == 1
        assert ftl.stats.flash_reads == 0

    def test_trim_unmaps_and_invalidates(self, ftl):
        ftl.submit(write(3))
        gppa = ftl.mapped_gppa(3)
        ftl.submit(trim(3))
        assert ftl.mapped_gppa(3) == UNMAPPED
        assert ftl.status.get(gppa) is PageStatus.INVALID

    def test_trim_unmapped_is_noop(self, ftl):
        ftl.submit(trim(3))
        assert ftl.stats.host_trims == 1


class TestGarbageCollection:
    def test_gc_reclaims_space(self, ftl):
        # hammer a small LPA range far beyond device capacity
        fill_random(ftl, ftl.config.physical_pages * 3, span=32)
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.flash_erases > 0

    def test_gc_preserves_all_live_data(self, ftl):
        rng = random.Random(1)
        expected = {}
        for i in range(ftl.config.physical_pages * 2):
            lpa = rng.randrange(48)
            ftl.submit(write(lpa))
            expected[lpa] = None
        # verify every mapped LPA reads back its own latest payload
        for lpa in expected:
            gppa = ftl.mapped_gppa(lpa)
            chip_id, ppn = ftl.split_gppa(gppa)
            data = ftl.chips[chip_id].read_page(ppn).data
            assert data[0] == lpa  # payload token carries the LPA

    def test_waf_above_one_under_wide_churn(self, ftl, tiny_config):
        """Random overwrites over a nearly-full space force live copies."""
        span = int(tiny_config.logical_pages * 0.9)
        fill_random(ftl, ftl.config.physical_pages * 3, span=span)
        assert ftl.stats.waf > 1.0

    def test_hot_span_cheaper_than_wide_span(self, tiny_config):
        """A small hot set yields fully-invalid victims (near-free GC);
        wide churn forces live-page copies -- the classic WAF gradient."""
        hot = PageMappedFtl(tiny_config)
        fill_random(hot, tiny_config.physical_pages * 3, span=32)
        wide = PageMappedFtl(tiny_config)
        fill_random(
            wide,
            tiny_config.physical_pages * 3,
            span=int(tiny_config.logical_pages * 0.9),
        )
        assert hot.stats.waf < wide.stats.waf
        assert hot.stats.waf == pytest.approx(1.0, abs=0.15)

    def test_lazy_erase_leaves_pending_victims(self, ftl):
        fill_random(ftl, ftl.config.physical_pages * 2, span=32)
        pending = [
            b
            for chip in ftl.chips
            for b in chip.blocks
            if b.state is BlockState.ERASE_PENDING
        ]
        assert pending, "GC must queue victims for lazy erase"

    def test_gc_stats_consistency(self, ftl):
        fill_random(ftl, ftl.config.physical_pages * 2, span=32)
        s = ftl.stats
        assert s.flash_programs == s.host_writes + s.gc_copies


class TestInvariants:
    def test_l2p_and_status_agree_after_churn(self, ftl):
        fill_random(ftl, ftl.config.physical_pages * 2, seed=3, span=40)
        live = 0
        for lpa in range(ftl.config.logical_pages):
            gppa = ftl.mapped_gppa(lpa)
            if gppa == UNMAPPED:
                continue
            live += 1
            assert ftl.status.get(gppa) in (PageStatus.VALID, PageStatus.SECURED)
            assert ftl.l2p.reverse(gppa) == lpa
        counts = ftl.status.counts()
        assert counts[PageStatus.VALID] + counts[PageStatus.SECURED] == live

    def test_capacity_never_exceeded(self, ftl):
        fill_random(ftl, ftl.config.physical_pages * 3, seed=4, span=48)
        counts = ftl.status.counts()
        total = sum(counts.values())
        assert total == ftl.config.physical_pages
