"""Write-stream separation (hot/cold) in the allocator and FTL."""

import random

import pytest

from repro.ftl.allocator import BlockAllocator, GC_STREAM, HOST_STREAM
from repro.ftl.base import PageMappedFtl
from repro.ssd.config import SSDConfig
from repro.ssd.request import write


@pytest.fixture
def alloc():
    return BlockAllocator(n_chips=1, blocks_per_chip=6, pages_per_block=4)


class TestStreamAllocator:
    def test_streams_use_distinct_blocks(self, alloc):
        host_block, _, _ = alloc.allocate_page(0, HOST_STREAM)
        gc_block, _, _ = alloc.allocate_page(0, GC_STREAM)
        assert host_block != gc_block

    def test_streams_progress_independently(self, alloc):
        alloc.allocate_page(0, HOST_STREAM)
        alloc.allocate_page(0, HOST_STREAM)
        _, gc_offset, _ = alloc.allocate_page(0, GC_STREAM)
        assert gc_offset == 0

    def test_active_blocks_lists_all_streams(self, alloc):
        alloc.allocate_page(0, HOST_STREAM)
        alloc.allocate_page(0, GC_STREAM)
        assert len(alloc.active_blocks(0)) == 2

    def test_stream_of_block(self, alloc):
        host_block, _, _ = alloc.allocate_page(0, HOST_STREAM)
        gc_block, _, _ = alloc.allocate_page(0, GC_STREAM)
        assert alloc.stream_of_block(0, host_block) == HOST_STREAM
        assert alloc.stream_of_block(0, gc_block) == GC_STREAM
        assert alloc.stream_of_block(0, 5) is None

    def test_close_specific_stream(self, alloc):
        alloc.allocate_page(0, HOST_STREAM)
        gc_block, _, _ = alloc.allocate_page(0, GC_STREAM)
        closed = alloc.close_active(0, GC_STREAM)
        assert closed == gc_block
        assert alloc.active_block(0, HOST_STREAM) is not None
        assert alloc.active_block(0, GC_STREAM) is None

    def test_default_stream_is_host(self, alloc):
        block, _, _ = alloc.allocate_page(0)
        assert alloc.active_block(0) == block
        assert alloc.active_block(0, HOST_STREAM) == block


class TestStreamSeparationInFtl:
    def _make(self, small_geometry, separate):
        return PageMappedFtl(
            SSDConfig(
                n_channels=1,
                chips_per_channel=2,
                geometry=small_geometry,
                overprovision=0.2,
                separate_gc_stream=separate,
            )
        )

    def _churn_skewed(self, ftl, seed=0):
        """90 % of writes hit 20 % of the space (hot/cold mix)."""
        rng = random.Random(seed)
        span = int(ftl.config.logical_pages * 0.85)
        hot = max(1, span // 5)
        for lpa in range(span):
            ftl.submit(write(lpa))
        for _ in range(ftl.config.physical_pages * 3):
            lpa = rng.randrange(hot) if rng.random() < 0.9 else rng.randrange(span)
            ftl.submit(write(lpa))
        return ftl

    def test_gc_stream_keeps_relocations_apart(self, small_geometry):
        ftl = self._make(small_geometry, separate=True)
        self._churn_skewed(ftl)
        assert ftl.stats.gc_copies > 0  # GC actually ran through the stream

    def test_separation_waf_stays_comparable(self, small_geometry):
        """Hot/cold separation is roughly WAF-neutral here: under strong
        skew, greedy GC already self-segregates (hot blocks die fully
        before selection), and the second open block per chip eats into
        the small reserve.  The mechanism must not *break* anything --
        the FTL stays correct and WAF stays in the same regime."""
        mixed = self._churn_skewed(self._make(small_geometry, separate=False))
        split = self._churn_skewed(self._make(small_geometry, separate=True))
        assert split.stats.waf <= mixed.stats.waf * 1.5
        assert split.stats.waf >= 1.0

    def test_data_integrity_with_streams(self, small_geometry):
        ftl = self._churn_skewed(self._make(small_geometry, separate=True), seed=2)
        for lpa in range(int(ftl.config.logical_pages * 0.85)):
            gppa = ftl.mapped_gppa(lpa)
            if gppa < 0:
                continue
            chip_id, ppn = ftl.split_gppa(gppa)
            assert ftl.chips[chip_id].read_page(ppn).data[0] == lpa

    def test_all_variants_accept_streams(self, small_geometry):
        from repro.ftl import FTL_VARIANTS

        for name, cls in FTL_VARIANTS.items():
            ftl = cls(
                SSDConfig(
                    n_channels=1,
                    chips_per_channel=2,
                    geometry=small_geometry,
                    overprovision=0.2,
                    separate_gc_stream=True,
                )
            )
            self._churn_skewed(ftl, seed=3)
