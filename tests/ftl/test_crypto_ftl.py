"""cryptSSD: encryption-based sanitization and its key-compromise hole."""

import random

import pytest

from repro.ftl.crypto_based import CryptoFtl, T_CRYPTO_US, is_ciphertext
from repro.security.attacker import KeyCompromiseAttacker, RawChipAttacker
from repro.ssd.device import SSD
from repro.ssd.request import trim, write


@pytest.fixture
def ssd(tiny_config):
    return SSD(tiny_config, "cryptSSD")


class TestEncryption:
    def test_payloads_stored_as_ciphertext(self, ssd):
        ssd.submit(write(0, tag="f", secure=True))
        payloads = list(ssd.raw_dump().values())
        assert len(payloads) == 1
        assert is_ciphertext(payloads[0])

    def test_each_version_gets_its_own_key(self, ssd):
        ssd.submit(write(0, secure=True))
        ssd.submit(write(1, secure=True))
        kids = [p[1] for p in ssd.raw_dump().values()]
        assert len(set(kids)) == 2

    def test_controller_decrypts_live_data(self, ssd):
        ssd.submit(write(0, tag="f", secure=True))
        ftl: CryptoFtl = ssd.ftl
        gppa = ftl.mapped_gppa(0)
        chip_id, ppn = ftl.split_gppa(gppa)
        payload = ftl.chips[chip_id].read_page(ppn).data
        assert ftl.decrypt(payload) == (0, "f", 0)

    def test_gc_moves_keep_the_key(self, ssd, tiny_config):
        rng = random.Random(0)
        span = int(tiny_config.logical_pages * 0.85)
        for _ in range(tiny_config.physical_pages * 2):
            ssd.submit(write(rng.randrange(span), secure=True))
        ftl: CryptoFtl = ssd.ftl
        assert ftl.stats.gc_copies > 0
        # every live page must still decrypt
        for lpa in range(span):
            gppa = ftl.mapped_gppa(lpa)
            if gppa < 0:
                continue
            chip_id, ppn = ftl.split_gppa(gppa)
            payload = ftl.chips[chip_id].read_page(ppn).data
            plaintext = ftl.decrypt(payload)
            assert plaintext is not None and plaintext[0] == lpa

    def test_crypto_engine_costs_transfer_time(self, tiny_config):
        plain = SSD(tiny_config, "baseline")
        crypt = SSD(tiny_config, "cryptSSD")
        assert crypt.ftl.timing.t_xfer_us == pytest.approx(
            plain.ftl.timing.t_xfer_us + T_CRYPTO_US
        )


class TestKeyDeletion:
    def test_update_deletes_old_key(self, ssd):
        ssd.submit(write(0, secure=True))
        old_kid = next(iter(ssd.raw_dump().values()))[1]
        ssd.submit(write(0, secure=True))
        ftl: CryptoFtl = ssd.ftl
        assert not ftl.key_exists(old_kid)
        assert ftl.key_deletions == 1

    def test_trim_deletes_key(self, ssd):
        ssd.submit(write(0, secure=True))
        kid = next(iter(ssd.raw_dump().values()))[1]
        ssd.submit(trim(0))
        assert not ssd.ftl.key_exists(kid)

    def test_insecure_data_keeps_keys(self, ssd):
        ssd.submit(write(0, secure=False))
        ssd.submit(write(0, secure=False))
        assert ssd.ftl.key_deletions == 0

    def test_no_flash_ops_for_sanitize(self, ssd):
        """Key deletion is the whole point: zero lock/scrub/erase cost."""
        ssd.submit(write(0, secure=True))
        ssd.submit(write(0, secure=True))
        stats = ssd.stats
        assert stats.plocks == 0
        assert stats.scrubs == 0
        assert stats.sanitize_erases == 0


class TestSecurity:
    def test_plain_attacker_defeated(self, ssd):
        ssd.submit(write(0, tag="secret", secure=True))
        ssd.submit(trim(0))
        assert not RawChipAttacker(ssd).recover_file("secret")
        # the stale ciphertext is physically present but unreadable
        assert any(is_ciphertext(p) for p in ssd.raw_dump().values())

    def test_key_compromise_recovers_deleted_data(self, ssd):
        """The paper's Section 8 critique, made executable."""
        ssd.submit(write(0, tag="secret", secure=True))
        attacker = KeyCompromiseAttacker(ssd)
        snapshot = attacker.snapshot_keys()   # cold boot before the delete
        ssd.submit(trim(0))                   # "secure" delete by key removal
        recovered = attacker.recover_file_with_keys("secret", snapshot)
        assert len(recovered) == 1
        assert recovered[0].payload == (0, "secret", 0)

    def test_late_snapshot_recovers_nothing(self, ssd):
        """Keys snapshotted *after* deletion are already gone."""
        ssd.submit(write(0, tag="secret", secure=True))
        ssd.submit(trim(0))
        attacker = KeyCompromiseAttacker(ssd)
        snapshot = attacker.snapshot_keys()
        assert not attacker.recover_file_with_keys("secret", snapshot)

    def test_evanesco_immune_to_key_compromise(self, tiny_config):
        """secSSD blocks access on-chip: leaked keys change nothing."""
        ssd = SSD(tiny_config, "secSSD")
        ssd.submit(write(0, tag="secret", secure=True))
        attacker = KeyCompromiseAttacker(ssd)
        snapshot = attacker.snapshot_keys()
        ssd.submit(trim(0))
        assert not attacker.recover_file_with_keys("secret", snapshot)
