"""secSSD: the Evanesco-aware lock manager (Section 6)."""

import random

import pytest

from repro.ftl.mapping import UNMAPPED
from repro.ftl.page_status import PageStatus
from repro.ftl.secure import SecureFtl, SecureFtlNoBlockLock
from repro.ssd.request import trim, write


@pytest.fixture
def ftl(tiny_config):
    return SecureFtl(tiny_config)


class TestSecuredTracking:
    def test_secure_write_tracked_secured(self, ftl):
        ftl.submit(write(0, secure=True))
        assert ftl.status.get(ftl.mapped_gppa(0)) is PageStatus.SECURED

    def test_insec_write_tracked_valid(self, ftl):
        ftl.submit(write(0, secure=False))
        assert ftl.status.get(ftl.mapped_gppa(0)) is PageStatus.VALID


class TestLockOnInvalidate:
    def test_update_locks_old_copy(self, ftl):
        ftl.submit(write(0, secure=True))
        old = ftl.mapped_gppa(0)
        ftl.submit(write(0, secure=True))
        chip_id, ppn = ftl.split_gppa(old)
        assert ftl.chips[chip_id].page_locked(ppn)
        assert ftl.stats.plocks == 1

    def test_trim_locks_old_copy(self, ftl):
        ftl.submit(write(0, secure=True))
        old = ftl.mapped_gppa(0)
        ftl.submit(trim(0))
        chip_id, ppn = ftl.split_gppa(old)
        assert ftl.chips[chip_id].page_locked(ppn)

    def test_insecure_data_not_locked(self, ftl):
        ftl.submit(write(0, secure=False))
        old = ftl.mapped_gppa(0)
        ftl.submit(write(0, secure=False))
        chip_id, ppn = ftl.split_gppa(old)
        assert not ftl.chips[chip_id].page_locked(ppn)
        assert ftl.stats.plocks == 0

    def test_live_data_never_locked(self, ftl):
        for lpa in range(16):
            ftl.submit(write(lpa, secure=True))
        for lpa in range(16):
            gppa = ftl.mapped_gppa(lpa)
            chip_id, ppn = ftl.split_gppa(gppa)
            assert not ftl.chips[chip_id].page_locked(ppn)

    def test_gc_locks_moved_secured_copies(self, ftl, tiny_config):
        rng = random.Random(0)
        span = int(tiny_config.logical_pages * 0.9)
        for _ in range(tiny_config.physical_pages * 2):
            ftl.submit(write(rng.randrange(span), secure=True))
        assert ftl.stats.gc_copies > 0
        assert ftl.stats.plocks + ftl.stats.block_locks > 0


class TestBlockLockPolicy:
    def test_block_lock_for_large_dead_batch(self, ftl, tiny_config):
        """Trimming a whole dead block's worth of secured pages -> bLock."""
        ppb = tiny_config.geometry.pages_per_block
        n_chips = tiny_config.n_chips
        # fill several whole blocks on each chip with one file's pages
        total = ppb * n_chips
        for lpa in range(total):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0, npages=total))
        assert ftl.stats.block_locks >= 1

    def test_no_block_lock_on_partially_live_block(self, ftl):
        """A block with remaining live pages must use pLock (Section 6)."""
        for lpa in range(8):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0))  # one page only; its block still holds live data
        assert ftl.stats.block_locks == 0
        assert ftl.stats.plocks == 1

    def test_small_batches_use_plock(self, tiny_config):
        """Below the tbLock/tpLock break-even (3 pages), pLock wins."""
        ftl = SecureFtl(tiny_config)
        assert not ftl._should_block_lock(0, n_secured=3)

    def test_policy_respects_latency_breakeven(self, tiny_config):
        ftl = SecureFtl(tiny_config)
        ppb = tiny_config.geometry.pages_per_block
        # build one fully-dead block on chip 0 by hand
        chip = ftl.chips[0]
        for offset in range(ppb):
            gppa = ftl.make_gppa(0, offset)
            chip.program_page(offset, "x")
            ftl.status.set_written(gppa, True)
            ftl.status.set_invalid(gppa)
        assert ftl._should_block_lock(0, n_secured=4)
        assert not ftl._should_block_lock(0, n_secured=3)

    def test_redundant_block_lock_suppressed(self, ftl, tiny_config):
        """Invalidations into an already-bLocked block issue no new locks."""
        ppb = tiny_config.geometry.pages_per_block
        total = ppb * tiny_config.n_chips
        for lpa in range(total):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0, npages=total))
        locks_after_first = ftl.stats.block_locks
        assert locks_after_first >= 1


class TestNoBlockLockVariant:
    def test_never_uses_block_lock(self, tiny_config):
        ftl = SecureFtlNoBlockLock(tiny_config)
        ppb = tiny_config.geometry.pages_per_block
        total = ppb * tiny_config.n_chips
        for lpa in range(total):
            ftl.submit(write(lpa, secure=True))
        ftl.submit(trim(0, npages=total))
        assert ftl.stats.block_locks == 0
        assert ftl.stats.plocks == total

    def test_block_lock_reduces_plocks(self, tiny_config):
        """The Fig. 14 ablation: bLock replaces trains of pLocks."""

        def run(cls):
            ftl = cls(tiny_config)
            rng = random.Random(0)
            span = int(tiny_config.logical_pages * 0.8)
            for _ in range(tiny_config.physical_pages * 2):
                ftl.submit(write(rng.randrange(span), secure=True))
            return ftl.stats

        with_b = run(SecureFtl)
        without = run(SecureFtlNoBlockLock)
        assert with_b.plocks < without.plocks
        assert with_b.block_locks > 0


class TestSanitizationGuarantee:
    def test_attacker_cannot_read_deleted_data(self, ftl):
        ftl.submit(write(0, secure=True))
        token = None
        gppa = ftl.mapped_gppa(0)
        chip_id, ppn = ftl.split_gppa(gppa)
        token = ftl.chips[chip_id].read_page(ppn).data
        ftl.submit(trim(0))
        assert token not in ftl.raw_device_dump().values()

    def test_attacker_cannot_read_stale_version(self, ftl):
        ftl.submit(write(5, secure=True))
        ftl.submit(write(5, secure=True))
        dump = ftl.raw_device_dump()
        versions = [v for v in dump.values() if isinstance(v, tuple) and v[0] == 5]
        assert len(versions) == 1  # only the live copy

    def test_c1_holds_under_churn(self, ftl, tiny_config):
        rng = random.Random(2)
        span = int(tiny_config.logical_pages * 0.8)
        for i in range(tiny_config.physical_pages * 2):
            lpa = rng.randrange(span)
            if rng.random() < 0.1 and ftl.mapped_gppa(lpa) != UNMAPPED:
                ftl.submit(trim(lpa))
            else:
                ftl.submit(write(lpa, secure=True))
        # C2: at most one readable version per LPA, and it is the live one
        dump = ftl.raw_device_dump()
        seen: dict[int, int] = {}
        for v in dump.values():
            if isinstance(v, tuple):
                seen[v[0]] = seen.get(v[0], 0) + 1
        for lpa, count in seen.items():
            assert count == 1
            assert ftl.mapped_gppa(lpa) != UNMAPPED
