"""FTL behaviour under injected faults: retry, remap, retire, fall back.

Each test schedules faults deterministically -- either through a
:class:`~repro.faults.FaultPlan` rate/schedule fixed at construction, or
by appending to the live injector's schedule at the *current* op index
(so the very next chip command of that kind fails).
"""

from __future__ import annotations

import pytest

from repro.analysis.torture import stale_secured_exposures, torture_requests
from repro.faults import FaultKind, FaultPlan
from repro.flash.block import BlockState
from repro.flash.errors import PowerLossInjected
from repro.ftl import FTL_VARIANTS
from repro.ftl.recovery import PowerLossRecovery
from repro.ssd.device import SSD
from repro.ssd.request import read, write


def fail_next(ftl, kind: FaultKind, count: int = 1, skip: int = 0) -> None:
    """Schedule ``count`` consecutive faults, ``skip`` ops from now."""
    injector = ftl.fault_injector
    for offset in range(count):
        injector._schedule[injector.op_index + skip + offset] = kind


@pytest.fixture
def ftl(tiny_config):
    return FTL_VARIANTS["baseline"](tiny_config, faults=FaultPlan(seed=5))


class TestReadRetry:
    def test_transient_failure_retried_to_success(self, ftl):
        ftl.submit(write(0))
        fail_next(ftl, FaultKind.READ_UNCORRECTABLE)
        ftl.submit(read(0))
        assert ftl.stats.read_retries == 1
        assert ftl.stats.read_failures == 0

    def test_exhausted_retries_surface_as_read_failure(self, ftl):
        ftl.submit(write(0))
        budget = ftl.config.read_retry_limit
        fail_next(ftl, FaultKind.READ_UNCORRECTABLE, count=budget)
        ftl.submit(read(0))  # must not raise to the host
        assert ftl.stats.read_failures == 1
        assert ftl.stats.read_retries == budget - 1

    def test_persistent_read_faults_never_raise_to_host(self, tiny_config):
        plan = FaultPlan.single(FaultKind.READ_UNCORRECTABLE, 1.0, seed=3)
        ftl = FTL_VARIANTS["baseline"](tiny_config, faults=plan)
        ftl.submit(write(7))
        for _ in range(5):
            ftl.submit(read(7))
        assert ftl.stats.read_failures == 5


class TestProgramFailRemap:
    def test_write_completes_past_a_program_fail(self, ftl):
        fail_next(ftl, FaultKind.PROGRAM_FAIL)
        ftl.submit(write(0))
        assert ftl.stats.program_fails == 1
        ftl.submit(read(0))
        assert ftl.stats.read_failures == 0  # remapped copy is readable

    def test_torn_page_is_dead_and_condemns_at_threshold(self, ftl):
        threshold = ftl.config.program_fail_retire_threshold
        fail_next(ftl, FaultKind.PROGRAM_FAIL, count=threshold)
        ftl.submit(write(0))
        assert ftl.stats.program_fails == threshold
        assert len(ftl._condemned) == 1

    def test_condemned_block_is_retired_by_gc(self, ftl, tiny_config):
        threshold = ftl.config.program_fail_retire_threshold
        fail_next(ftl, FaultKind.PROGRAM_FAIL, count=threshold)
        ftl.submit(write(0))
        (gb,) = ftl._condemned
        # churn until GC drains the condemned block (it is the priority
        # victim, so the first collection on its chip retires it)
        logical = tiny_config.logical_pages
        for i in range(logical * 3):
            ftl.submit(write(i % logical))
            if gb in ftl._bad_blocks:
                break
        assert gb in ftl._bad_blocks
        chip_id, local_block = divmod(
            gb, tiny_config.geometry.blocks_per_chip
        )
        block = ftl.chips[chip_id].blocks[local_block]
        assert block.state is BlockState.RETIRED
        assert local_block in ftl.alloc.retired_blocks(chip_id)
        assert ftl.stats.grown_bad_blocks == 1


class TestEraseFailRetirement:
    def test_erase_fail_scrubs_and_retires(self, ftl, tiny_config):
        # make block 0 of chip 0 fully invalid, then fail its erase
        pages = tiny_config.geometry.pages_per_block
        n_chips = len(ftl.chips)
        for _ in range(2):  # write then overwrite the same stripe
            for i in range(pages * n_chips):
                ftl.submit(write(i))
        fail_next(ftl, FaultKind.ERASE_FAIL)
        chip_id, local_block = ftl.split_gppa(0)
        local_block = 0
        assert not ftl._erase_block_now(0, local_block)
        assert ftl.stats.erase_fails == 1
        assert ftl.stats.grown_bad_blocks == 1
        assert ftl.stats.scrubs > 0  # data destroyed despite the failed erase
        assert ftl.chips[0].blocks[local_block].state is BlockState.RETIRED
        assert ftl.global_block(0, local_block) in ftl._bad_blocks

    def test_gc_skips_grown_bad_blocks(self, ftl, tiny_config):
        pages = tiny_config.geometry.pages_per_block
        n_chips = len(ftl.chips)
        for _ in range(2):
            for i in range(pages * n_chips):
                ftl.submit(write(i))
        fail_next(ftl, FaultKind.ERASE_FAIL)
        ftl._erase_block_now(0, 0)
        assert ftl._select_victim(0) != ftl.global_block(0, 0)


class TestLockFallbackChain:
    @pytest.mark.parametrize("variant", ["secSSD", "secSSD_nobLock"])
    def test_forced_plock_failure_falls_back_to_block_lock(
        self, tiny_config, variant
    ):
        plan = FaultPlan.single(FaultKind.PLOCK_FAIL, 1.0, seed=2)
        ssd = SSD(tiny_config, variant, checked=True, faults=plan)
        for request in torture_requests(160, ssd.logical_pages, seed=2):
            ssd.submit(request)
        assert ssd.stats.lock_failures > 0
        assert ssd.stats.fallback_block_locks > 0
        ssd.ftl._sanitizer.full_check()
        assert stale_secured_exposures(ssd) == []

    def test_forced_plock_and_block_lock_fall_back_to_erase(self, tiny_config):
        plan = FaultPlan.from_rates(
            {FaultKind.PLOCK_FAIL: 1.0, FaultKind.BLOCK_LOCK_FAIL: 1.0},
            seed=2,
        )
        ssd = SSD(tiny_config, "secSSD", checked=True, faults=plan)
        for request in torture_requests(160, ssd.logical_pages, seed=2):
            ssd.submit(request)
        assert ssd.stats.fallback_erases > 0
        ssd.ftl._sanitizer.full_check()
        assert stale_secured_exposures(ssd) == []

    def test_lock_retry_recovers_single_glitch(self, tiny_config):
        ftl = FTL_VARIANTS["secSSD"](tiny_config, faults=FaultPlan(seed=4))
        ftl.submit(write(0, secure=True))
        old = ftl.mapped_gppa(0)
        # op 0 of the next submit is the new copy's program; op 1 the pLock
        fail_next(ftl, FaultKind.PLOCK_FAIL, skip=1)
        ftl.submit(write(0, secure=True))  # invalidation pLocks the old copy
        chip_id, ppn = ftl.split_gppa(old)
        assert ftl.chips[chip_id].page_locked(ppn)
        assert ftl.stats.lock_retries == 1
        assert ftl.stats.lock_failures == 0
        assert ftl.stats.fallback_block_locks == 0


class TestPowerLossMidRun:
    def test_recovered_device_keeps_serving(self, tiny_config):
        plan = FaultPlan.power_loss_at(300, seed=6)
        ssd = SSD(tiny_config, "secSSD", checked=True, faults=plan)
        with pytest.raises(PowerLossInjected):
            for request in torture_requests(400, ssd.logical_pages, seed=6):
                ssd.submit(request)
        recovery = PowerLossRecovery(ssd.ftl)
        recovery.simulate_power_loss()
        recovery.recover()
        ssd.ftl._sanitizer.full_check()
        for request in torture_requests(40, ssd.logical_pages, seed=7):
            ssd.submit(request)
        ssd.ftl._sanitizer.full_check()
