"""Property-based allocator and status-table state-machine tests."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ftl.allocator import BlockAllocator, GC_STREAM, HOST_STREAM
from repro.ftl.page_status import PageStatus, StatusTable

N_CHIPS = 2
BLOCKS = 6
PPB = 4


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=N_CHIPS - 1),
            st.sampled_from([HOST_STREAM, GC_STREAM]),
        ),
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_allocator_never_hands_out_a_page_twice(ops):
    alloc = BlockAllocator(N_CHIPS, BLOCKS, PPB)
    seen: set[tuple[int, int, int]] = set()
    for chip_id, stream in ops:
        try:
            block, offset, _ = alloc.allocate_page(chip_id, stream)
        except RuntimeError:
            continue  # chip exhausted: acceptable terminal state
        key = (chip_id, block, offset)
        assert key not in seen, "page handed out twice without erase"
        seen.add(key)


@given(
    ops=st.lists(
        st.integers(min_value=0, max_value=N_CHIPS - 1), max_size=60
    )
)
@settings(max_examples=40, deadline=None)
def test_allocator_offsets_sequential_within_block(ops):
    alloc = BlockAllocator(N_CHIPS, BLOCKS, PPB)
    last: dict[tuple[int, int], int] = {}
    for chip_id in ops:
        try:
            block, offset, _ = alloc.allocate_page(chip_id)
        except RuntimeError:
            continue
        key = (chip_id, block)
        expected = last.get(key, -1) + 1
        assert offset == expected
        last[key] = offset


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "invalidate", "erase"]),
            st.integers(min_value=0, max_value=BLOCKS * PPB - 1),
            st.booleans(),
        ),
        max_size=80,
    )
)
@settings(max_examples=40, deadline=None)
def test_status_table_counters_stay_consistent(ops):
    table = StatusTable(BLOCKS * PPB, PPB)
    for kind, gppa, secure in ops:
        if kind == "write" and table.get(gppa) is PageStatus.FREE:
            table.set_written(gppa, secure)
        elif kind == "invalidate" and table.get(gppa) in (
            PageStatus.VALID,
            PageStatus.SECURED,
        ):
            table.set_invalid(gppa)
        elif kind == "erase":
            table.set_erased_block(gppa // PPB)
        # counters must always equal a recount from scratch
        for blk in range(BLOCKS):
            base = blk * PPB
            statuses = [table.get(g) for g in range(base, base + PPB)]
            assert table.live_count(blk) == sum(
                s in (PageStatus.VALID, PageStatus.SECURED) for s in statuses
            )
            assert table.secured_count(blk) == sum(
                s is PageStatus.SECURED for s in statuses
            )
            assert table.invalid_count(blk) == sum(
                s is PageStatus.INVALID for s in statuses
            )
