"""Block allocator: lazy erase, active-block management."""

import pytest

from repro.ftl.allocator import BlockAllocator


@pytest.fixture
def alloc():
    return BlockAllocator(n_chips=2, blocks_per_chip=4, pages_per_block=3)


class TestAllocation:
    def test_initial_reserve(self, alloc):
        assert alloc.reserve_blocks(0) == 4

    def test_sequential_pages_within_block(self, alloc):
        positions = [alloc.allocate_page(0)[:2] for _ in range(3)]
        assert positions == [(0, 0), (0, 1), (0, 2)]

    def test_rolls_to_next_block(self, alloc):
        for _ in range(3):
            alloc.allocate_page(0)
        block, offset, _ = alloc.allocate_page(0)
        assert (block, offset) == (1, 0)

    def test_chips_independent(self, alloc):
        alloc.allocate_page(0)
        block, offset, _ = alloc.allocate_page(1)
        assert (block, offset) == (0, 0)

    def test_no_erase_needed_for_fresh_blocks(self, alloc):
        for _ in range(12):  # all 4 blocks
            _, _, erase = alloc.allocate_page(0)
            assert erase is None

    def test_exhaustion_raises(self, alloc):
        for _ in range(12):
            alloc.allocate_page(0)
        with pytest.raises(RuntimeError):
            alloc.allocate_page(0)


class TestLazyErase:
    def test_pending_block_erased_at_reuse(self, alloc):
        for _ in range(12):
            alloc.allocate_page(0)
        alloc.retire_victim(0, 2)
        block, offset, erase = alloc.allocate_page(0)
        assert block == 2
        assert erase == 2  # lazy erase happens exactly at reuse

    def test_free_pool_preferred_over_pending(self, alloc):
        # consume only block 0, then retire block 1
        for _ in range(3):
            alloc.allocate_page(0)
        alloc.retire_victim(0, 1)
        block, _, erase = alloc.allocate_page(0)
        assert block == 1 or erase is None  # free pool first

    def test_reserve_counts_pending(self, alloc):
        for _ in range(12):
            alloc.allocate_page(0)
        assert alloc.reserve_blocks(0) == 0
        alloc.retire_victim(0, 0)
        assert alloc.reserve_blocks(0) == 1

    def test_add_erased_returns_to_pool(self, alloc):
        for _ in range(12):
            alloc.allocate_page(0)
        alloc.add_erased(0, 3)
        block, _, erase = alloc.allocate_page(0)
        assert block == 3
        assert erase is None


class TestActiveBlock:
    def test_active_position(self, alloc):
        assert alloc.active_position(0) is None
        alloc.allocate_page(0)
        assert alloc.active_position(0) == (0, 1)

    def test_active_closes_when_full(self, alloc):
        for _ in range(3):
            alloc.allocate_page(0)
        assert alloc.active_position(0) is None

    def test_close_active(self, alloc):
        alloc.allocate_page(0)
        closed = alloc.close_active(0)
        assert closed == 0
        assert alloc.active_position(0) is None
        # next allocation opens a different block
        block, offset, _ = alloc.allocate_page(0)
        assert (block, offset) == (1, 0)

    def test_close_active_when_none(self, alloc):
        assert alloc.close_active(0) is None

    def test_active_pages_left(self, alloc):
        assert alloc.active_pages_left(0) == 0
        alloc.allocate_page(0)
        assert alloc.active_pages_left(0) == 2

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            BlockAllocator(0, 1, 1)
