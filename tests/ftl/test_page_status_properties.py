"""Property tests: StatusTable transition legality and counter coherence.

A stateful hypothesis machine drives the table through random legal and
illegal transitions against a plain-list model, checking that

* exactly the model-legal transitions are accepted (FREE -> VALID/
  SECURED -> INVALID -> FREE and nothing else), and
* the per-block live/secured/invalid counters always equal a recount.

This is the static counterpart of the runtime sanitizer's shadow-table
check: if these properties hold, any divergence the sanitizer reports
must come from an FTL mutating state outside the transition methods.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.ftl.page_status import PageStatus, StatusTable

PAGES_PER_BLOCK = 6
N_BLOCKS = 4
PAGES = PAGES_PER_BLOCK * N_BLOCKS


class StatusTableMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.table = StatusTable(PAGES, PAGES_PER_BLOCK)
        self.model = [PageStatus.FREE] * PAGES

    # ------------------------------------------------------------------
    @rule(gppa=st.integers(0, PAGES - 1), secure=st.booleans())
    def write(self, gppa: int, secure: bool) -> None:
        if self.model[gppa] is PageStatus.FREE:
            self.table.set_written(gppa, secure)
            self.model[gppa] = (
                PageStatus.SECURED if secure else PageStatus.VALID
            )
        else:
            with pytest.raises(ValueError):
                self.table.set_written(gppa, secure)

    @rule(gppa=st.integers(0, PAGES - 1))
    def invalidate(self, gppa: int) -> None:
        prev = self.model[gppa]
        if prev in (PageStatus.VALID, PageStatus.SECURED):
            assert self.table.set_invalid(gppa) is prev
            self.model[gppa] = PageStatus.INVALID
        else:
            with pytest.raises(ValueError):
                self.table.set_invalid(gppa)

    @rule(block_id=st.integers(0, N_BLOCKS - 1))
    def erase(self, block_id: int) -> None:
        # erase is legal from any mix of page states
        self.table.set_erased_block(block_id)
        base = block_id * PAGES_PER_BLOCK
        for gppa in range(base, base + PAGES_PER_BLOCK):
            self.model[gppa] = PageStatus.FREE

    # ------------------------------------------------------------------
    @invariant()
    def statuses_match_model(self) -> None:
        for gppa in range(PAGES):
            assert self.table.get(gppa) is self.model[gppa]

    @invariant()
    def counters_match_recount(self) -> None:
        for block_id in range(N_BLOCKS):
            base = block_id * PAGES_PER_BLOCK
            states = self.model[base : base + PAGES_PER_BLOCK]
            live = sum(
                1
                for s in states
                if s in (PageStatus.VALID, PageStatus.SECURED)
            )
            secured = sum(1 for s in states if s is PageStatus.SECURED)
            invalid = sum(1 for s in states if s is PageStatus.INVALID)
            assert self.table.live_count(block_id) == live
            assert self.table.secured_count(block_id) == secured
            assert self.table.invalid_count(block_id) == invalid

    @invariant()
    def live_pages_listing_consistent(self) -> None:
        for block_id in range(N_BLOCKS):
            listed = self.table.live_pages(block_id)
            assert len(listed) == self.table.live_count(block_id)
            for gppa in listed:
                assert self.model[gppa] in (
                    PageStatus.VALID,
                    PageStatus.SECURED,
                )


TestStatusTableStateMachine = StatusTableMachine.TestCase
TestStatusTableStateMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
