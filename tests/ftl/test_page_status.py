"""Extended page-status table (free/valid/invalid/secured)."""

import pytest

from repro.ftl.page_status import PageStatus, StatusTable


@pytest.fixture
def table():
    return StatusTable(physical_pages=24, pages_per_block=6)


class TestTransitions:
    def test_initially_free(self, table):
        assert table.get(0) is PageStatus.FREE
        assert table.counts()[PageStatus.FREE] == 24

    def test_write_valid(self, table):
        table.set_written(0, secure=False)
        assert table.get(0) is PageStatus.VALID

    def test_write_secured(self, table):
        table.set_written(0, secure=True)
        assert table.get(0) is PageStatus.SECURED

    def test_invalidate_returns_previous(self, table):
        table.set_written(0, secure=True)
        assert table.set_invalid(0) is PageStatus.SECURED

    def test_cannot_write_twice(self, table):
        table.set_written(0, secure=False)
        with pytest.raises(ValueError):
            table.set_written(0, secure=False)

    def test_cannot_invalidate_free(self, table):
        with pytest.raises(ValueError):
            table.set_invalid(0)

    def test_cannot_invalidate_twice(self, table):
        table.set_written(0, secure=False)
        table.set_invalid(0)
        with pytest.raises(ValueError):
            table.set_invalid(0)

    def test_erase_block_resets(self, table):
        for gppa in range(6):
            table.set_written(gppa, secure=bool(gppa % 2))
        table.set_erased_block(0)
        for gppa in range(6):
            assert table.get(gppa) is PageStatus.FREE


class TestBlockCounters:
    def test_live_count(self, table):
        table.set_written(0, secure=False)
        table.set_written(1, secure=True)
        assert table.live_count(0) == 2
        assert table.secured_count(0) == 1

    def test_counters_follow_invalidate(self, table):
        table.set_written(0, secure=True)
        table.set_invalid(0)
        assert table.live_count(0) == 0
        assert table.secured_count(0) == 0
        assert table.invalid_count(0) == 1

    def test_counters_per_block(self, table):
        table.set_written(0, secure=False)   # block 0
        table.set_written(6, secure=False)   # block 1
        assert table.live_count(0) == 1
        assert table.live_count(1) == 1
        assert table.live_count(2) == 0

    def test_live_pages_listing(self, table):
        table.set_written(0, secure=False)
        table.set_written(1, secure=True)
        table.set_written(2, secure=False)
        table.set_invalid(1)
        assert table.live_pages(0) == [0, 2]

    def test_block_of(self, table):
        assert table.block_of(0) == 0
        assert table.block_of(6) == 1
        assert table.block_of(23) == 3

    def test_erase_resets_counters(self, table):
        table.set_written(0, secure=True)
        table.set_invalid(0)
        table.set_erased_block(0)
        assert table.invalid_count(0) == 0
        assert table.live_count(0) == 0


class TestValidation:
    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            StatusTable(physical_pages=10, pages_per_block=3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StatusTable(0, 1)
