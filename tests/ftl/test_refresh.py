"""Read-disturb refresh: relocation of heavily-read blocks."""

import pytest

from repro.ftl import FTL_VARIANTS
from repro.ftl.mapping import UNMAPPED
from repro.ssd.config import SSDConfig
from repro.ssd.request import read, write


@pytest.fixture
def refresh_config(small_geometry):
    return SSDConfig(
        n_channels=1,
        chips_per_channel=2,
        geometry=small_geometry,
        overprovision=0.2,
        read_refresh_threshold=50,
    )


def fill_blocks(ftl, lpas):
    """Write enough data to close at least the first blocks."""
    ppb = ftl.geometry.pages_per_block
    for lpa in range(lpas):
        ftl.submit(write(lpa, secure=True))
    return ppb


class TestRefreshTrigger:
    def test_disabled_by_default(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        fill_blocks(ftl, 48)
        for _ in range(500):
            ftl.submit(read(0))
        assert ftl.stats.refreshes == 0

    def test_hot_reads_trigger_refresh(self, refresh_config):
        ftl = FTL_VARIANTS["baseline"](refresh_config)
        fill_blocks(ftl, refresh_config.geometry.pages_per_block * 2)
        old_gppa = ftl.mapped_gppa(0)
        for _ in range(60):
            ftl.submit(read(0))
        assert ftl.stats.refreshes >= 1
        assert ftl.stats.refresh_copies > 0
        # the hot page moved to a fresh location
        assert ftl.mapped_gppa(0) != old_gppa

    def test_refreshed_data_still_readable(self, refresh_config):
        ftl = FTL_VARIANTS["baseline"](refresh_config)
        n = refresh_config.geometry.pages_per_block * 2
        fill_blocks(ftl, n)
        for _ in range(60):
            ftl.submit(read(1))
        for lpa in range(n):
            gppa = ftl.mapped_gppa(lpa)
            assert gppa != UNMAPPED
            chip_id, ppn = ftl.split_gppa(gppa)
            assert ftl.chips[chip_id].read_page(ppn).data[0] == lpa

    def test_counter_resets_after_refresh(self, refresh_config):
        ftl = FTL_VARIANTS["baseline"](refresh_config)
        fill_blocks(ftl, refresh_config.geometry.pages_per_block * 2)
        for _ in range(60):
            ftl.submit(read(0))
        first = ftl.stats.refreshes
        # a handful more reads must not instantly re-trigger
        for _ in range(10):
            ftl.submit(read(0))
        assert ftl.stats.refreshes == first

    def test_open_blocks_not_refreshed(self, refresh_config):
        ftl = FTL_VARIANTS["baseline"](refresh_config)
        ftl.submit(write(0))  # lives in the open block
        for _ in range(200):
            ftl.submit(read(0))
        assert ftl.stats.refreshes == 0


class TestRefreshSanitization:
    def test_secured_copies_locked_on_refresh(self, refresh_config):
        """Section 6: any flash-management move of a secured page must
        sanitize the stale copy -- refresh included."""
        ftl = FTL_VARIANTS["secSSD"](refresh_config)
        fill_blocks(ftl, refresh_config.geometry.pages_per_block * 2)
        locks_before = ftl.stats.plocks + ftl.stats.block_locks
        for _ in range(60):
            ftl.submit(read(0))
        assert ftl.stats.refreshes >= 1
        assert ftl.stats.plocks + ftl.stats.block_locks > locks_before

    def test_no_stale_versions_after_refresh(self, refresh_config):
        ftl = FTL_VARIANTS["secSSD"](refresh_config)
        n = refresh_config.geometry.pages_per_block * 2
        fill_blocks(ftl, n)
        for _ in range(60):
            ftl.submit(read(2))
        dump = ftl.raw_device_dump()
        seen: dict[int, int] = {}
        for payload in dump.values():
            if isinstance(payload, tuple) and len(payload) == 3:
                seen[payload[0]] = seen.get(payload[0], 0) + 1
        assert all(count == 1 for count in seen.values())
