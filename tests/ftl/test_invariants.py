"""Property-based invariants across all FTL variants.

Hypothesis drives random host op sequences against every variant and
checks the structural invariants any correct FTL must keep:

* the forward and reverse maps agree;
* every mapped page is live in the status table (and vice versa);
* a read of a mapped LPA returns the newest payload written to it;
* the physical page population is conserved;
* on sanitizing variants, the attacker never sees more than the single
  live version of any LPA.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.geometry import CellType, Geometry
from repro.ftl import FTL_VARIANTS
from repro.ftl.mapping import UNMAPPED
from repro.ftl.page_status import PageStatus
from repro.ssd.config import SSDConfig
from repro.ssd.request import trim, write

SANITIZING = ("secSSD", "secSSD_nobLock", "erSSD", "scrSSD")


def make_config() -> SSDConfig:
    return SSDConfig(
        n_channels=1,
        chips_per_channel=2,
        geometry=Geometry(
            blocks_per_chip=10,
            wordlines_per_block=4,
            cell_type=CellType.TLC,
            page_size_bytes=16 * 1024,
            cells_per_wordline=64,
        ),
        overprovision=0.3,
    )


#: one op is (kind, lpa, secure) over a small hot LPA space.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim"]),
        st.integers(min_value=0, max_value=23),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def replay(variant: str, ops) -> tuple:
    ftl = FTL_VARIANTS[variant](make_config())
    latest: dict[int, tuple] = {}
    for kind, lpa, secure in ops:
        if kind == "write":
            ftl.submit(write(lpa, secure=secure))
            gppa = ftl.mapped_gppa(lpa)
            chip_id, ppn = ftl.split_gppa(gppa)
            latest[lpa] = ftl.chips[chip_id].read_page(ppn).data
        else:
            ftl.submit(trim(lpa))
            latest.pop(lpa, None)
    return ftl, latest


def check_structural_invariants(ftl) -> None:
    live_pages = 0
    for lpa in range(ftl.config.logical_pages):
        gppa = ftl.mapped_gppa(lpa)
        if gppa == UNMAPPED:
            continue
        live_pages += 1
        assert ftl.l2p.reverse(gppa) == lpa
        assert ftl.status.get(gppa) in (PageStatus.VALID, PageStatus.SECURED)
    counts = ftl.status.counts()
    assert counts[PageStatus.VALID] + counts[PageStatus.SECURED] == live_pages
    assert sum(counts.values()) == ftl.config.physical_pages


@pytest.mark.parametrize("variant", sorted(FTL_VARIANTS))
@given(ops=ops_strategy)
@settings(max_examples=15, deadline=None)
def test_structural_invariants(variant, ops):
    ftl, _ = replay(variant, ops)
    check_structural_invariants(ftl)


@pytest.mark.parametrize("variant", sorted(FTL_VARIANTS))
@given(ops=ops_strategy)
@settings(max_examples=15, deadline=None)
def test_reads_return_latest_data(variant, ops):
    ftl, latest = replay(variant, ops)
    for lpa, payload in latest.items():
        gppa = ftl.mapped_gppa(lpa)
        assert gppa != UNMAPPED
        chip_id, ppn = ftl.split_gppa(gppa)
        assert ftl.chips[chip_id].read_page(ppn).data == payload


@pytest.mark.parametrize("variant", SANITIZING)
@given(ops=ops_strategy)
@settings(max_examples=15, deadline=None)
def test_sanitizers_expose_at_most_live_versions(variant, ops):
    """C1+C2 as a property: for secure traffic, the forensic dump never
    contains a version other than the live one."""
    secure_ops = [(kind, lpa, True) for kind, lpa, _ in ops]
    ftl, latest = replay(variant, secure_ops)
    dump = ftl.raw_device_dump()
    by_lpa: dict[int, list] = {}
    for payload in dump.values():
        if isinstance(payload, tuple) and len(payload) == 3:
            by_lpa.setdefault(payload[0], []).append(payload)
    for lpa, versions in by_lpa.items():
        assert len(versions) == 1, f"stale versions of lpa {lpa} recoverable"
        assert versions[0] == latest[lpa]


@given(ops=ops_strategy)
@settings(max_examples=10, deadline=None)
def test_baseline_variants_agree_on_logical_state(ops):
    """All variants expose identical host-visible state for the same ops."""
    reference, ref_latest = replay("baseline", ops)
    for variant in SANITIZING:
        ftl, latest = replay(variant, ops)
        assert latest == ref_latest
        for lpa in range(ftl.config.logical_pages):
            assert (ftl.mapped_gppa(lpa) == UNMAPPED) == (
                reference.mapped_gppa(lpa) == UNMAPPED
            )
