"""Workload generators: Table 2 characteristics and replayability."""

import pytest

from repro.host.filesystem import FileSystem
from repro.host.trace import TraceKind, TraceReplayer
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.flash.geometry import CellType, Geometry
from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadGenerator, WorkloadProfile

CAPACITY = 4096


@pytest.fixture(params=sorted(WORKLOADS))
def workload_name(request):
    return request.param


def collect_ops(name, seed=1, multiplier=0.5, capacity=CAPACITY, **kwargs):
    gen = WORKLOADS[name](capacity_pages=capacity, seed=seed, **kwargs)
    return gen, list(gen.ops(write_multiplier=multiplier))


class TestTable2Profiles:
    def test_profiles_match_paper(self):
        p = {n: cls.profile for n, cls in WORKLOADS.items()}
        assert p["MailServer"].reads_per_write == pytest.approx(1.0)    # 1:1
        assert p["DBServer"].reads_per_write == pytest.approx(0.1)      # 1:10
        assert p["FileServer"].reads_per_write == pytest.approx(0.75)   # 3:4
        assert p["Mobile"].reads_per_write == pytest.approx(0.02)       # 1:50

    def test_write_sizes_match_paper(self):
        """Table 2 write sizes in 16-KiB pages."""
        p = {n: cls.profile.write_size_pages for n, cls in WORKLOADS.items()}
        assert p["MailServer"] == (1, 2)     # 16-32 KiB
        assert p["DBServer"] == (1, 16)      # 16-256 KiB
        assert p["FileServer"] == (2, 8)     # 32-128 KiB
        assert p["Mobile"] == (32, 512)      # 0.5-8 MiB


class TestGeneratedTraces:
    def test_deterministic_per_seed(self, workload_name):
        _, a = collect_ops(workload_name, seed=7, multiplier=0.3)
        _, b = collect_ops(workload_name, seed=7, multiplier=0.3)
        assert a == b

    def test_different_seeds_differ(self, workload_name):
        _, a = collect_ops(workload_name, seed=1, multiplier=0.3)
        _, b = collect_ops(workload_name, seed=2, multiplier=0.3)
        assert a != b

    def test_read_write_ratio_approximates_profile(self, workload_name):
        """Table 2's read:write ratio holds over the steady state
        (the setup/fill phase is warm-up, as in the paper's protocol)."""
        gen = WORKLOADS[workload_name](capacity_pages=CAPACITY, seed=1)
        list(gen.setup())
        ops = list(gen.steady(CAPACITY))
        reads = sum(1 for op in ops if op.kind is TraceKind.READ)
        writes = sum(
            1 for op in ops if op.kind in (TraceKind.WRITE, TraceKind.APPEND)
        )
        ratio = reads / writes
        assert ratio == pytest.approx(gen.profile.reads_per_write, rel=0.3)

    def test_usage_accounting_never_overflows(self, workload_name):
        gen, ops = collect_ops(workload_name, multiplier=1.0)
        assert gen.used_pages <= CAPACITY

    def test_steady_state_reaches_write_target(self, workload_name):
        gen, ops = collect_ops(workload_name, multiplier=0.5)
        written = sum(
            op.npages for op in ops if op.kind in (TraceKind.WRITE, TraceKind.APPEND)
        )
        # setup (~0.75 cap) + steady (0.5 cap)
        assert written >= CAPACITY * (0.7 + 0.5)


class TestReplayability:
    def test_trace_replays_cleanly(self, workload_name):
        """Every generated trace must apply without file-system errors."""
        cfg = SSDConfig(
            n_channels=2,
            chips_per_channel=2,
            geometry=Geometry(
                blocks_per_chip=24,
                wordlines_per_block=8,
                cell_type=CellType.TLC,
            ),
            overprovision=0.15,
        )
        gen = WORKLOADS[workload_name](capacity_pages=cfg.logical_pages, seed=3)
        fs = FileSystem(SSD(cfg, "baseline"))
        report = TraceReplayer(fs).replay(gen.ops(write_multiplier=0.5))
        assert report.ops > 0
        assert fs.used_pages <= fs.capacity_pages

    def test_setup_fills_to_target(self, workload_name):
        gen = WORKLOADS[workload_name](capacity_pages=CAPACITY, seed=1)
        list(gen.setup())
        assert gen.used_pages >= CAPACITY * gen.fill_fraction * 0.9
        assert gen.used_pages <= CAPACITY


class TestSecureFraction:
    def test_full_secure_by_default(self, workload_name):
        _, ops = collect_ops(workload_name, multiplier=0.2)
        creates = [op for op in ops if op.kind is TraceKind.CREATE]
        assert all(not op.insec for op in creates)

    def test_zero_secure_marks_everything_insec(self, workload_name):
        _, ops = collect_ops(workload_name, multiplier=0.2, secure_fraction=0.0)
        creates = [op for op in ops if op.kind is TraceKind.CREATE]
        assert all(op.insec for op in creates)

    def test_partial_fraction_mixes(self, workload_name):
        _, ops = collect_ops(workload_name, multiplier=1.0, secure_fraction=0.5)
        creates = [op for op in ops if op.kind is TraceKind.CREATE]
        insec = sum(op.insec for op in creates)
        assert 0 < insec < len(creates)


class TestBaseValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            WORKLOADS["Mobile"](capacity_pages=0)

    def test_rejects_bad_secure_fraction(self):
        with pytest.raises(ValueError):
            WORKLOADS["Mobile"](capacity_pages=64, secure_fraction=1.5)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            WORKLOADS["Mobile"](
                capacity_pages=64, fill_fraction=0.9, high_water=0.8
            )

    def test_write_size_capped_on_tiny_devices(self):
        gen = WORKLOADS["Mobile"](capacity_pages=64, seed=1)
        for _ in range(50):
            assert gen._write_size() <= 64 // 8

    def test_base_class_is_abstract(self):
        class Incomplete(WorkloadGenerator):
            profile = WorkloadProfile("x", 1.0, "none", (1, 1))

        gen = Incomplete(capacity_pages=64)
        with pytest.raises(NotImplementedError):
            list(gen.setup())
