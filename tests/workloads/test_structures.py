"""Structural properties of individual workload generators."""

import pytest

from repro.host.trace import TraceKind
from repro.workloads.dbserver import DBServerWorkload
from repro.workloads.mobile import MobileWorkload

CAPACITY = 8192


class TestDBServerStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        gen = DBServerWorkload(capacity_pages=CAPACITY, seed=2)
        setup = list(gen.setup())
        steady = list(gen.steady(CAPACITY))
        return gen, setup, steady

    def test_setup_creates_tables_log_and_cold(self, trace):
        _, setup, _ = trace
        names = {op.name for op in setup if op.kind is TraceKind.CREATE}
        assert sum(1 for n in names if n.startswith("table")) == 4
        assert sum(1 for n in names if n.startswith("redo-log")) == 1
        assert sum(1 for n in names if n.startswith("cold")) >= 2

    def test_cold_files_never_written_in_steady(self, trace):
        _, _, steady = trace
        cold_writes = [
            op
            for op in steady
            if op.kind in (TraceKind.WRITE, TraceKind.APPEND)
            and op.name.startswith("cold")
        ]
        assert cold_writes == []

    def test_hot_tables_dominate_updates(self, trace):
        gen, _, steady = trace
        hot = set(gen._tables[: gen.n_hot_tables])
        table_writes = [
            op for op in steady
            if op.kind is TraceKind.WRITE and op.name.startswith("table")
        ]
        hot_share = sum(1 for op in table_writes if op.name in hot) / len(
            table_writes
        )
        assert hot_share > 0.75  # configured at 0.9 of table updates

    def test_log_overwritten_circularly(self, trace):
        gen, _, steady = trace
        log_ops = [
            op
            for op in steady
            if op.name == gen._log and op.kind is not TraceKind.READ
        ]
        assert log_ops, "the redo log must be exercised"
        # the log is overwritten in place, never extended or deleted
        assert all(op.kind is TraceKind.WRITE for op in log_ops)
        log_size = gen._sizes[gen._log]
        assert all(op.offset_pages + op.npages <= log_size for op in log_ops)

    def test_updates_stay_in_bounds(self, trace):
        gen, _, steady = trace
        for op in steady:
            if op.kind is TraceKind.WRITE:
                assert op.offset_pages >= 0
                assert op.npages >= 1


class TestMobileStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        gen = MobileWorkload(capacity_pages=CAPACITY, seed=2)
        setup = list(gen.setup())
        steady = list(gen.steady(CAPACITY))
        return gen, setup, steady

    def test_bursts_interleave_files(self, trace):
        """Consecutive appends alternate between burst files, so their
        pages intermix on flash (the UV-VAF mechanism)."""
        _, setup, _ = trace
        appends = [op.name for op in setup if op.kind is TraceKind.APPEND]
        switches = sum(1 for a, b in zip(appends, appends[1:]) if a != b)
        assert switches > len(appends) / 4

    def test_picture_sizes_are_chunk_multiples(self, trace):
        gen, setup, steady = trace
        chunk = min(gen.chunk_pages, max(1, CAPACITY // 8))
        sizes: dict[str, int] = {}
        for op in setup + steady:
            if op.kind is TraceKind.APPEND:
                sizes[op.name] = sizes.get(op.name, 0) + op.npages
        finished = {
            name: total for name, total in sizes.items() if name in gen._sizes
        }
        for total in finished.values():
            assert total % chunk == 0

    def test_deletes_whole_pictures(self, trace):
        _, _, steady = trace
        deletes = [op for op in steady if op.kind is TraceKind.DELETE]
        assert deletes
        assert all(op.name.startswith("img") for op in deletes)

    def test_no_overwrites(self, trace):
        _, setup, steady = trace
        assert all(
            op.kind is not TraceKind.WRITE for op in setup + steady
        )
