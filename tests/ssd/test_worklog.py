"""Per-request work accounting and sanitization tails."""

import random

import pytest

from repro.ssd.device import SSD
from repro.ssd.request import RequestOp, read, trim, write
from repro.ssd.worklog import WorkLog


class TestWorkLogMechanics:
    def test_empty_log(self):
        log = WorkLog()
        assert log.count() == 0
        assert log.percentile(99) == 0.0
        assert log.mean() == 0.0

    def test_record_and_select(self):
        log = WorkLog()
        log.record(RequestOp.WRITE, 10.0)
        log.record(RequestOp.READ, 2.0)
        assert log.count() == 2
        assert log.count(RequestOp.WRITE) == 1
        assert log.mean(RequestOp.READ) == 2.0

    def test_percentiles(self):
        log = WorkLog()
        for v in range(1, 101):
            log.record(RequestOp.WRITE, float(v))
        assert log.percentile(50, RequestOp.WRITE) == pytest.approx(50.0, abs=1)
        assert log.percentile(99, RequestOp.WRITE) == pytest.approx(99.0, abs=1)
        assert log.max(RequestOp.WRITE) == 100.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            WorkLog().percentile(101)

    def test_summary_keys(self):
        log = WorkLog()
        log.record(RequestOp.TRIM, 1.0)
        summary = log.summary()
        assert set(summary) == {"count", "mean_us", "p50_us", "p99_us", "max_us"}


class TestDeviceIntegration:
    def test_write_work_includes_program_and_transfer(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0))
        work = ssd.work_log.max(RequestOp.WRITE)
        assert work == pytest.approx(
            tiny_config.t_prog_us + tiny_config.t_xfer_us
        )

    def test_read_cheaper_than_write(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0))
        ssd.submit(read(0))
        assert ssd.work_log.mean(RequestOp.READ) < ssd.work_log.mean(
            RequestOp.WRITE
        )

    def test_trim_on_baseline_is_free(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0))
        ssd.submit(trim(0))
        assert ssd.work_log.max(RequestOp.TRIM) == 0.0

    def test_secure_trim_costs_one_plock(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        ssd.submit(write(0, secure=True))
        ssd.submit(trim(0))
        assert ssd.work_log.max(RequestOp.TRIM) == pytest.approx(
            tiny_config.t_plock_us
        )


class TestSanitizationTails:
    def _churn(self, variant, config, seed=0):
        ssd = SSD(config, variant)
        rng = random.Random(seed)
        span = int(config.logical_pages * 0.7)
        for _ in range(config.physical_pages):
            ssd.submit(write(rng.randrange(span), secure=True))
        return ssd

    def test_erssd_has_catastrophic_write_tails(self, tiny_config):
        """One secured overwrite can cost a whole block of relocations."""
        er = self._churn("erSSD", tiny_config)
        sec = self._churn("secSSD", tiny_config)
        assert er.work_log.percentile(99, RequestOp.WRITE) > 5 * (
            sec.work_log.percentile(99, RequestOp.WRITE)
        )

    def test_secssd_tail_close_to_baseline(self, tiny_config):
        base = self._churn("baseline", tiny_config)
        sec = self._churn("secSSD", tiny_config)
        ratio = sec.work_log.percentile(99, RequestOp.WRITE) / max(
            base.work_log.percentile(99, RequestOp.WRITE), 1.0
        )
        assert ratio < 1.6

    def test_scrssd_tail_in_between(self, tiny_config):
        scr = self._churn("scrSSD", tiny_config)
        sec = self._churn("secSSD", tiny_config)
        er = self._churn("erSSD", tiny_config)
        p99 = lambda ssd: ssd.work_log.percentile(99, RequestOp.WRITE)
        assert p99(sec) < p99(scr) < p99(er)
