"""SSD device facade."""

import pytest

from repro.ssd.device import SSD, make_ssd
from repro.ssd.request import read, trim, write


class TestConstruction:
    def test_all_variants_construct(self, tiny_config):
        for variant in ("baseline", "secSSD", "secSSD_nobLock", "erSSD", "scrSSD"):
            ssd = SSD(tiny_config, variant)
            assert ssd.variant == variant
            assert ssd.ftl.name == variant

    def test_unknown_variant_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="unknown variant"):
            SSD(tiny_config, "fancySSD")

    def test_make_ssd_helper(self, tiny_config):
        assert make_ssd(tiny_config, "secSSD").variant == "secSSD"


class TestReplay:
    def test_replay_accumulates_stats(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        result = ssd.replay([write(0), write(1), read(0), trim(1)])
        assert result.stats.host_writes == 2
        assert result.stats.host_reads == 1
        assert result.stats.host_trims == 1
        assert result.iops > 0

    def test_result_extra_fields(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        result = ssd.replay([write(0)])
        assert "logical_time" in result.extra
        assert result.extra["logical_time"] == 4.0  # 16 KiB = four 4-KiB ticks

    def test_raw_dump_passthrough(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0))
        assert len(ssd.raw_dump()) == 1

    def test_logical_pages_property(self, tiny_config):
        assert SSD(tiny_config, "baseline").logical_pages == tiny_config.logical_pages
