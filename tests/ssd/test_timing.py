"""Resource-occupancy timing model."""

import pytest

from repro.ssd.timing import TimingModel


@pytest.fixture
def timing():
    return TimingModel(n_channels=2, chips_per_channel=2)


class TestTopology:
    def test_chip_count(self, timing):
        assert timing.n_chips == 4

    def test_channel_mapping(self, timing):
        assert timing.channel_of(0) == 0
        assert timing.channel_of(1) == 0
        assert timing.channel_of(2) == 1
        assert timing.channel_of(3) == 1

    def test_rejects_bad_chip(self, timing):
        with pytest.raises(ValueError):
            timing.read(4)

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            TimingModel(n_channels=0, chips_per_channel=1)


class TestOperations:
    def test_read_occupies_chip_then_channel(self, timing):
        end = timing.read(0)
        assert timing.chip_busy[0] == timing.t_read_us
        assert end == timing.t_read_us + timing.t_xfer_us

    def test_program_transfers_then_programs(self, timing):
        end = timing.program(0)
        assert timing.channel_busy[0] == timing.t_xfer_us
        assert end == timing.t_xfer_us + timing.t_prog_us

    def test_erase_has_no_transfer(self, timing):
        timing.erase(0)
        assert timing.channel_busy[0] == 0.0
        assert timing.chip_busy[0] == timing.t_erase_us

    def test_lock_latencies(self, timing):
        timing.plock(0)
        timing.block_lock(1)
        assert timing.chip_busy[0] == timing.t_plock_us
        assert timing.chip_busy[1] == timing.t_block_lock_us

    def test_scrub(self, timing):
        timing.scrub(0)
        assert timing.chip_busy[0] == timing.t_scrub_us

    def test_copy_combines_read_and_program(self, timing):
        timing.copy(0, 1)
        assert timing.chip_busy[0] == timing.t_read_us
        assert timing.chip_busy[1] > 0


class TestParallelism:
    def test_chips_overlap(self, timing):
        """Programs on different chips of the same channel pipeline."""
        timing.program(0)
        timing.program(1)
        # both chips busy; channel serialized the two transfers
        assert timing.channel_busy[0] == 2 * timing.t_xfer_us
        overlap = min(timing.chip_busy[0], timing.chip_busy[1])
        assert overlap > 0

    def test_channels_independent(self, timing):
        timing.program(0)
        timing.program(2)
        assert timing.chip_busy[0] == timing.chip_busy[2]

    def test_serialization_on_one_chip(self, timing):
        timing.program(0)
        first = timing.chip_busy[0]
        timing.program(0)
        assert timing.chip_busy[0] > first + timing.t_prog_us - 1e-9

    def test_channel_contention_delays_transfer(self, timing):
        for _ in range(10):
            timing.read(0)
        # the channel, not the chip, is the bottleneck at some point
        assert timing.channel_busy[0] >= timing.chip_busy[0]


class TestElapsed:
    def test_elapsed_is_max(self, timing):
        timing.erase(0)
        timing.read(2)
        assert timing.elapsed_us == timing.t_erase_us

    def test_utilization_fractions(self, timing):
        timing.erase(0)
        util = timing.utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == 0.0

    def test_empty_model(self, timing):
        assert timing.elapsed_us == 0.0
        assert timing.utilization() == [0.0] * 4
