"""SSD configuration and device statistics."""

import pytest

from repro.flash.geometry import Geometry
from repro.ssd.config import SSDConfig, paper_config, scaled_config
from repro.ssd.stats import DeviceStats, RunResult


class TestPaperConfig:
    def test_topology(self):
        cfg = paper_config()
        assert cfg.n_channels == 2
        assert cfg.chips_per_channel == 4
        assert cfg.n_chips == 8

    def test_capacity_32gib_physical(self):
        cfg = paper_config()
        assert cfg.physical_bytes == 8 * 428 * 576 * 16 * 1024  # ~31.6 GiB

    def test_timing_constants(self):
        cfg = paper_config()
        assert cfg.t_read_us == 80.0
        assert cfg.t_prog_us == 700.0
        assert cfg.t_erase_us == 3500.0
        assert cfg.t_plock_us == 100.0
        assert cfg.t_block_lock_us == 300.0

    def test_logical_smaller_than_physical(self):
        cfg = paper_config()
        assert cfg.logical_pages < cfg.physical_pages


class TestScaledConfig:
    def test_same_topology(self):
        cfg = scaled_config()
        assert (cfg.n_channels, cfg.chips_per_channel) == (2, 4)

    def test_custom_dimensions(self):
        cfg = scaled_config(blocks_per_chip=10, wordlines_per_block=4)
        assert cfg.geometry.blocks_per_chip == 10
        assert cfg.geometry.pages_per_block == 12


class TestValidation:
    def test_rejects_bad_overprovision(self):
        with pytest.raises(ValueError):
            SSDConfig(overprovision=0.0)
        with pytest.raises(ValueError):
            SSDConfig(overprovision=1.0)

    def test_rejects_bad_gc_thresholds(self):
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold_blocks=0)
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold_blocks=5, gc_target_blocks=3)

    def test_rejects_too_few_blocks(self):
        with pytest.raises(ValueError):
            SSDConfig(
                geometry=Geometry(blocks_per_chip=4, wordlines_per_block=4),
                gc_target_blocks=5,
            )


class TestDeviceStats:
    def test_waf(self):
        stats = DeviceStats(host_writes=100, flash_programs=250)
        assert stats.waf == 2.5

    def test_waf_zero_writes(self):
        assert DeviceStats().waf == 0.0

    def test_iops(self):
        stats = DeviceStats(host_reads=50, host_writes=50)
        assert stats.iops(1e6) == pytest.approx(100.0)

    def test_iops_zero_elapsed(self):
        assert DeviceStats(host_writes=10).iops(0.0) == 0.0

    def test_snapshot_roundtrip(self):
        stats = DeviceStats(host_writes=3, plocks=2)
        snap = stats.snapshot()
        assert snap["host_writes"] == 3
        assert snap["plocks"] == 2

    def test_to_dict_from_dict_round_trip(self):
        stats = DeviceStats(
            host_writes=3, plocks=2, grown_bad_blocks=1, read_retries=4
        )
        assert DeviceStats.from_dict(stats.to_dict()) == stats

    def test_to_dict_is_lossless_not_a_report(self):
        # snapshot() mixes in the computed WAF; to_dict() must not
        fields = DeviceStats().to_dict()
        assert "waf" not in fields
        assert set(DeviceStats().snapshot()) - set(fields) == {"waf"}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown DeviceStats"):
            DeviceStats.from_dict({"host_writes": 1, "bogus": 2})


class TestRunResult:
    def test_normalization(self):
        base = RunResult("baseline", DeviceStats(host_writes=10, flash_programs=10), 1e6)
        other = RunResult("x", DeviceStats(host_writes=10, flash_programs=20), 2e6)
        assert other.normalized_iops(base) == pytest.approx(0.5)
        assert other.normalized_waf(base) == pytest.approx(2.0)

    def test_normalization_rejects_zero_baseline(self):
        base = RunResult("baseline", DeviceStats(), 0.0)
        other = RunResult("x", DeviceStats(host_writes=1), 1.0)
        with pytest.raises(ValueError):
            other.normalized_iops(base)
