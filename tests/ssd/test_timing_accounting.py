"""TimingModel accounting contract and instrumentation seam.

The closed-loop engine cross-checks against ``elapsed_us`` and splits
work into chip vs channel occupancy, so the accounting identity
``total_work_us == cell_work_us + xfer_work_us`` and the per-field
validation are normative (see the module docstring of
:mod:`repro.ssd.timing`).
"""

import pytest

from repro.ssd.config import SSDConfig, scaled_config
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest, RequestOp
from repro.ssd.timing import TimingModel


def _model(**overrides) -> TimingModel:
    kwargs = dict(n_channels=2, chips_per_channel=2)
    kwargs.update(overrides)
    return TimingModel(**kwargs)


class TestWorkAccounting:
    def test_split_identity_over_mixed_ops(self):
        timing = _model()
        timing.read(0)
        timing.program(1)
        timing.copy(2, 3)
        timing.erase(0)
        timing.plock(1)
        timing.block_lock(2)
        timing.scrub(3)
        assert timing.total_work_us == pytest.approx(
            timing.cell_work_us + timing.xfer_work_us
        )

    def test_read_splits_sense_and_transfer(self):
        timing = _model()
        timing.read(0)
        assert timing.cell_work_us == timing.t_read_us
        assert timing.xfer_work_us == timing.t_xfer_us

    def test_program_splits_transfer_and_cell(self):
        timing = _model()
        timing.program(0)
        assert timing.cell_work_us == timing.t_prog_us
        assert timing.xfer_work_us == timing.t_xfer_us

    def test_chip_only_ops_add_no_transfer(self):
        timing = _model()
        timing.erase(0)
        timing.plock(0)
        timing.block_lock(0)
        timing.scrub(0)
        assert timing.xfer_work_us == 0.0
        assert timing.cell_work_us == (
            timing.t_erase_us + timing.t_plock_us
            + timing.t_block_lock_us + timing.t_scrub_us
        )

    def test_starts_from_zero(self):
        timing = _model()
        assert timing.total_work_us == 0.0
        assert timing.cell_work_us == 0.0
        assert timing.xfer_work_us == 0.0


class TestValidation:
    @pytest.mark.parametrize("field", TimingModel.TIMING_FIELDS)
    def test_every_timing_field_must_be_positive(self, field):
        with pytest.raises(ValueError, match=field):
            _model(**{field: 0.0})
        with pytest.raises(ValueError, match=field):
            _model(**{field: -1.0})

    def test_topology_must_be_positive(self):
        with pytest.raises(ValueError, match="topology"):
            TimingModel(n_channels=0, chips_per_channel=2)

    def test_config_validates_t_scrub_us(self, small_geometry):
        with pytest.raises(ValueError, match="t_scrub_us"):
            SSDConfig(
                n_channels=1, chips_per_channel=1,
                geometry=small_geometry, t_scrub_us=0.0,
            )


class TestScrubPulse:
    def test_defaults_to_plock_duration(self):
        timing = _model()
        assert timing.t_scrub_us == timing.t_plock_us

    def test_scrub_occupies_the_chip(self):
        timing = _model(t_scrub_us=250.0)
        end = timing.scrub(1)
        assert end == 250.0
        assert timing.chip_busy[1] == 250.0

    def test_config_value_reaches_the_ftl(self, small_geometry):
        config = SSDConfig(
            n_channels=1, chips_per_channel=2,
            geometry=small_geometry, t_scrub_us=123.0,
        )
        ssd = SSD(config, "scrSSD", checked=False)
        assert ssd.ftl.timing.t_scrub_us == 123.0


class TestInstrumentTiming:
    def test_swap_before_traffic(self):
        config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
        ssd = SSD(config, "baseline", checked=False)
        replacement = TimingModel(
            n_channels=config.n_channels,
            chips_per_channel=config.chips_per_channel,
        )
        ssd.instrument_timing(replacement)
        assert ssd.ftl.timing is replacement

    def test_rejected_after_traffic(self):
        config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
        ssd = SSD(config, "baseline", checked=False)
        ssd.submit(IoRequest(RequestOp.WRITE, lpa=0))
        with pytest.raises(RuntimeError, match="after requests"):
            ssd.instrument_timing(
                TimingModel(
                    n_channels=config.n_channels,
                    chips_per_channel=config.chips_per_channel,
                )
            )

    def test_rejected_on_topology_mismatch(self):
        config = scaled_config(blocks_per_chip=16, wordlines_per_block=8)
        ssd = SSD(config, "baseline", checked=False)
        with pytest.raises(ValueError, match="topology"):
            ssd.instrument_timing(
                TimingModel(n_channels=1, chips_per_channel=1)
            )
