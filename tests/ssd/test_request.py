"""Host request types and the INSEC_WRITE flag."""

import pytest

from repro.ssd.request import (
    IoRequest,
    RequestFlags,
    RequestOp,
    read,
    trim,
    write,
)


class TestConstruction:
    def test_write_defaults_secure(self):
        req = write(10)
        assert req.secure
        assert req.op is RequestOp.WRITE

    def test_insecure_write(self):
        req = write(10, secure=False)
        assert not req.secure
        assert req.flags & RequestFlags.INSEC_WRITE

    def test_read_is_never_secure(self):
        assert not read(0).secure

    def test_trim_is_never_secure(self):
        assert not trim(0).secure

    def test_lpas_range(self):
        req = write(5, npages=3)
        assert list(req.lpas()) == [5, 6, 7]

    def test_tag_carried(self):
        assert write(0, tag=42).tag == 42

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            IoRequest(RequestOp.READ, 0, 0)

    def test_rejects_negative_lpa(self):
        with pytest.raises(ValueError):
            IoRequest(RequestOp.READ, -1, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            write(0).lpa = 5
