"""Trace persistence (JSONL save/load)."""

import pytest

from repro.host.trace import TraceKind, TraceOp, append, create, delete, read, write
from repro.host.tracefile import load_trace, op_from_dict, op_to_dict, save_trace
from repro.workloads import WORKLOADS

SAMPLE = [
    create("a", insec=True),
    append("a", 4),
    write("a", 1, 2),
    read("a", 0, 3),
    delete("a"),
]


class TestRoundtrip:
    def test_dict_roundtrip(self):
        for op in SAMPLE:
            assert op_from_dict(op_to_dict(op)) == op

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = save_trace(path, SAMPLE)
        assert count == len(SAMPLE)
        assert list(load_trace(path)) == SAMPLE

    def test_workload_trace_roundtrip(self, tmp_path):
        gen = WORKLOADS["MailServer"](capacity_pages=512, seed=3)
        ops = list(gen.ops(write_multiplier=0.2))
        path = tmp_path / "mail.jsonl"
        save_trace(path, ops)
        assert list(load_trace(path)) == ops

    def test_lazy_streaming(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, SAMPLE)
        stream = load_trace(path)
        assert next(stream) == SAMPLE[0]  # nothing else consumed yet


class TestRobustness:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "create", "name": "x"}\n\n\n')
        ops = list(load_trace(path))
        assert len(ops) == 1
        assert ops[0].kind is TraceKind.CREATE

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            list(load_trace(path))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="bad trace record"):
            op_from_dict({"kind": "explode", "name": "x"})

    def test_missing_fields_default(self):
        op = op_from_dict({"kind": "read", "name": "f"})
        assert op == TraceOp(TraceKind.READ, "f", 0, 0, False)
