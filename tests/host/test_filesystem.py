"""File-system layer: allocation, in-place writes, trim-on-delete."""

import pytest

from repro.host.fileapi import FileSystemError, OpenFlags, OutOfSpaceError
from repro.host.filesystem import FileSystem, _contiguous_runs
from repro.ssd.device import SSD


@pytest.fixture
def fs(tiny_config):
    return FileSystem(SSD(tiny_config, "baseline"))


@pytest.fixture
def secure_fs(tiny_config):
    return FileSystem(SSD(tiny_config, "secSSD"))


class TestCreateDelete:
    def test_create(self, fs):
        info = fs.create("a")
        assert info.name == "a"
        assert info.size_pages == 0
        assert fs.exists("a")

    def test_duplicate_create_rejected(self, fs):
        fs.create("a")
        with pytest.raises(FileSystemError):
            fs.create("a")

    def test_delete_frees_space(self, fs):
        fs.create("a")
        fs.append("a", 10)
        used = fs.used_pages
        fs.delete("a")
        assert fs.used_pages == used - 10
        assert not fs.exists("a")

    def test_delete_sends_trim(self, fs):
        fs.create("a")
        fs.append("a", 4)
        fs.delete("a")
        assert fs.ssd.stats.host_trims == 4

    def test_missing_file(self, fs):
        with pytest.raises(FileSystemError):
            fs.lookup("ghost")

    def test_lpa_reuse_after_delete(self, fs):
        fs.create("a")
        fs.append("a", 4)
        lpas = list(fs.lookup("a").lpas)
        fs.delete("a")
        fs.create("b")
        fs.append("b", 4)
        assert set(fs.lookup("b").lpas) <= set(lpas) | set(range(fs.capacity_pages))


class TestWriteSemantics:
    def test_append_grows_file(self, fs):
        fs.create("a")
        fs.append("a", 3)
        fs.append("a", 2)
        assert fs.lookup("a").size_pages == 5

    def test_overwrite_keeps_same_lpas(self, fs):
        """ext4 semantics: in-place update re-writes the same LPAs."""
        fs.create("a")
        fs.append("a", 4)
        before = list(fs.lookup("a").lpas)
        fs.write("a", 0, 4)
        assert fs.lookup("a").lpas == before

    def test_write_extends_past_eof(self, fs):
        fs.create("a")
        fs.write("a", 0, 2)
        fs.write("a", 1, 3)  # overlaps last page, extends by 2
        assert fs.lookup("a").size_pages == 4

    def test_sparse_write_rejected(self, fs):
        fs.create("a")
        with pytest.raises(FileSystemError):
            fs.write("a", 5, 1)

    def test_zero_pages_rejected(self, fs):
        fs.create("a")
        with pytest.raises(ValueError):
            fs.write("a", 0, 0)

    def test_overwrite_whole(self, fs):
        fs.create("a")
        fs.append("a", 4)
        writes_before = fs.ssd.stats.host_writes
        fs.overwrite_whole("a")
        assert fs.ssd.stats.host_writes == writes_before + 4

    def test_out_of_space(self, fs):
        fs.create("big")
        with pytest.raises(OutOfSpaceError):
            fs.append("big", fs.capacity_pages + 1)

    def test_read_whole_file(self, fs):
        fs.create("a")
        fs.append("a", 3)
        fs.read("a")
        assert fs.ssd.stats.host_reads == 3

    def test_read_subrange(self, fs):
        fs.create("a")
        fs.append("a", 5)
        fs.read("a", 1, 2)
        assert fs.ssd.stats.host_reads == 2


class TestSecurityFlags:
    def test_default_files_are_secure(self, fs):
        assert fs.create("a").secure

    def test_o_insec_files_are_insecure(self, fs):
        assert not fs.create("a", OpenFlags.O_INSEC).secure

    def test_insec_propagates_to_device(self, secure_fs):
        from repro.ftl.page_status import PageStatus

        secure_fs.create("s")
        secure_fs.append("s", 1)
        secure_fs.create("i", OpenFlags.O_INSEC)
        secure_fs.append("i", 1)
        ftl = secure_fs.ssd.ftl
        s_gppa = ftl.mapped_gppa(secure_fs.lookup("s").lpas[0])
        i_gppa = ftl.mapped_gppa(secure_fs.lookup("i").lpas[0])
        assert ftl.status.get(s_gppa) is PageStatus.SECURED
        assert ftl.status.get(i_gppa) is PageStatus.VALID

    def test_secure_delete_is_immediate(self, secure_fs):
        secure_fs.create("secret")
        secure_fs.append("secret", 4)
        fid = secure_fs.lookup("secret").fid
        secure_fs.delete("secret")
        dump = secure_fs.ssd.raw_dump()
        assert not any(
            isinstance(v, tuple) and v[1] == fid for v in dump.values()
        )


class TestContiguousRuns:
    def test_empty(self):
        assert list(_contiguous_runs([])) == []

    def test_single(self):
        assert list(_contiguous_runs([5])) == [(5, 1)]

    def test_contiguous(self):
        assert list(_contiguous_runs([1, 2, 3])) == [(1, 3)]

    def test_gaps(self):
        assert list(_contiguous_runs([1, 2, 5, 6, 9])) == [(1, 2), (5, 2), (9, 1)]

    def test_request_batching(self, fs):
        """A contiguous file write arrives as one device request."""
        fs.create("a")
        fs.append("a", 6)  # fresh fs: allocator hands out 0..5
        # 6 pages -> at most a couple of requests, not 6
        assert fs.ssd.stats.host_writes == 6
