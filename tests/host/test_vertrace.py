"""VerTrace profiler: VAF, Tinsecure, UV/MV classification."""

import pytest

from repro.host.filesystem import FileSystem
from repro.host.trace import TraceReplayer, append, create, delete, write
from repro.host.vertrace import VerTrace
from repro.ssd.device import SSD


@pytest.fixture
def setup(tiny_config):
    vt = VerTrace.for_config(tiny_config, track_all=True)
    ssd = SSD(tiny_config, "baseline", observer=vt)
    return vt, TraceReplayer(FileSystem(ssd)), ssd


class TestClassification:
    def test_append_only_file_is_uv(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4), append("f", 2)])
        fid = rep.fs.lookup("f").fid
        assert not vt.file_state(fid).multi_version

    def test_overwritten_file_is_mv(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4), write("f", 0, 1)])
        fid = rep.fs.lookup("f").fid
        assert vt.file_state(fid).multi_version

    def test_deleted_file_is_mv(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4)])
        fid = rep.fs.lookup("f").fid
        rep.replay([delete("f")])
        assert vt.file_state(fid).multi_version


class TestVaf:
    def test_untouched_file_vaf_zero(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4)])
        fid = rep.fs.lookup("f").fid
        assert vt.vaf(fid) == 0.0

    def test_single_overwrite_vaf(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4), write("f", 0, 2)])
        fid = rep.fs.lookup("f").fid
        assert vt.vaf(fid) == pytest.approx(2 / 4)

    def test_repeated_overwrites_accumulate(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 2)])
        fid = rep.fs.lookup("f").fid
        for _ in range(5):
            rep.replay([write("f", 0, 2)])
        # 10 stale copies / 2 valid, all still un-erased at this scale
        assert vt.vaf(fid) == pytest.approx(5.0)

    def test_empty_file_vaf_zero(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f")])
        fid = [s.fid for s in vt.files()] or [None]
        # file never wrote a page -> not even profiled
        assert all(vt.vaf(f) == 0.0 for f in fid if f is not None)


class TestTinsecure:
    def test_secure_until_overwrite(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 4)])
        fid = rep.fs.lookup("f").fid
        assert vt.t_insecure(fid) == 0.0

    def test_insecure_time_accumulates(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 1), write("f", 0, 1)])
        fid = rep.fs.lookup("f").fid
        rep.replay([create("g"), append("g", 10)])  # logical time advances
        vt.close()
        assert vt.t_insecure(fid) > 0.0

    def test_normalization_to_capacity(self, setup, tiny_config):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 1), write("f", 0, 1)])
        fid = rep.fs.lookup("f").fid
        # write exactly one capacity's worth across two files (the file
        # system holds them simultaneously, so leave room for "f")
        pages = (tiny_config.logical_pages - 2) // 2
        rep.replay([create("g"), append("g", pages), delete("g")])
        rep.replay([create("h"), append("h", pages * 2 - pages), delete("h")])
        rep.replay([create("i"), append("i", 2)])
        vt.close()
        assert vt.t_insecure(fid) == pytest.approx(1.0, rel=0.1)


class TestPhysicalEvents:
    def test_erase_clears_invalid(self, tiny_config):
        """Once a block is erased the stale copies stop counting."""
        vt = VerTrace.for_config(tiny_config, track_all=True)
        ssd = SSD(tiny_config, "baseline", observer=vt)
        rep = TraceReplayer(FileSystem(ssd))
        rep.replay([create("f"), append("f", 2)])
        fid = rep.fs.lookup("f").fid
        rep.replay([write("f", 0, 2)])
        assert len(vt.file_state(fid).invalid) == 2
        # churn until GC erases the stale block
        rep.replay([create("x"), append("x", 1)])
        for i in range(tiny_config.physical_pages * 2):
            rep.replay([write("x", 0, 1)])
        assert len(vt.file_state(fid).invalid) < 2

    def test_sanitize_clears_invalid_immediately(self, tiny_config):
        """On secSSD the stale copy stops being counted at lock time."""
        vt = VerTrace.for_config(tiny_config, track_all=True)
        ssd = SSD(tiny_config, "secSSD", observer=vt)
        rep = TraceReplayer(FileSystem(ssd))
        rep.replay([create("f"), append("f", 2), write("f", 0, 2)])
        fid = rep.fs.lookup("f").fid
        state = vt.file_state(fid)
        assert len(state.invalid) == 0
        vt.close()
        assert vt.t_insecure(fid) == 0.0


class TestTimeplots:
    def test_samples_recorded(self, setup):
        vt, rep, _ = setup
        rep.replay([create("f"), append("f", 3), write("f", 0, 1)])
        fid = rep.fs.lookup("f").fid
        plot = vt.timeplot(fid)
        assert plot[-1].valid == 3
        assert plot[-1].invalid == 1

    def test_selective_tracking(self, tiny_config):
        vt = VerTrace.for_config(tiny_config)  # track nothing by default
        ssd = SSD(tiny_config, "baseline", observer=vt)
        rep = TraceReplayer(FileSystem(ssd))
        rep.replay([create("f"), append("f", 1)])
        fid = rep.fs.lookup("f").fid
        with pytest.raises(KeyError):
            vt.timeplot(fid)
        vt.track_timeplot(fid)
        rep.replay([append("f", 1)])
        assert vt.timeplot(fid)


class TestSummaries:
    def test_summary_structure(self, setup):
        vt, rep, _ = setup
        rep.replay([create("uv"), append("uv", 2)])
        rep.replay([create("mv"), append("mv", 2), write("mv", 0, 1)])
        vt.close()
        summary = vt.summarize()
        assert summary["uv"]["count"] == 1.0
        assert summary["mv"]["count"] == 1.0
        assert summary["mv"]["vaf_max"] > 0

    def test_empty_classes(self, tiny_config):
        vt = VerTrace.for_config(tiny_config)
        summary = vt.summarize()
        assert summary["uv"]["count"] == 0.0
        assert summary["mv"]["vaf_avg"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VerTrace(capacity_ticks=0, pages_per_block=4)
        with pytest.raises(ValueError):
            VerTrace(capacity_ticks=10, pages_per_block=0)
