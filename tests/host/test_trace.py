"""Trace records and replayer."""

import pytest

from repro.host.filesystem import FileSystem
from repro.host.trace import (
    TraceKind,
    TraceOp,
    TraceReplayer,
    append,
    create,
    delete,
    read,
    write,
)
from repro.ssd.device import SSD


@pytest.fixture
def replayer(tiny_config):
    return TraceReplayer(FileSystem(SSD(tiny_config, "baseline")))


class TestBuilders:
    def test_create(self):
        op = create("f", insec=True)
        assert op.kind is TraceKind.CREATE
        assert op.insec

    def test_write(self):
        op = write("f", 3, 2)
        assert (op.offset_pages, op.npages) == (3, 2)

    def test_append(self):
        assert append("f", 4).kind is TraceKind.APPEND

    def test_read_defaults(self):
        op = read("f")
        assert op.npages == 0  # whole file

    def test_delete(self):
        assert delete("f").kind is TraceKind.DELETE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceOp(TraceKind.WRITE, "f", -1, 1)


class TestReplay:
    def test_lifecycle(self, replayer):
        report = replayer.replay(
            [
                create("f"),
                append("f", 3),
                write("f", 0, 2),
                read("f"),
                delete("f"),
            ]
        )
        assert report.ops == 5
        assert report.creates == 1
        assert report.writes == 2
        assert report.pages_written == 5
        assert report.deletes == 1
        assert not replayer.fs.exists("f")

    def test_read_whole_file(self, replayer):
        replayer.replay([create("f"), append("f", 4), read("f")])
        assert replayer.fs.ssd.stats.host_reads == 4

    def test_insec_flag_respected(self, replayer):
        replayer.apply(create("f", insec=True))
        assert not replayer.fs.lookup("f").secure

    def test_report_counts_pages(self, replayer):
        report = replayer.replay([create("f"), append("f", 7), read("f", 0, 3)])
        assert report.pages_written == 7
        assert report.pages_read == 3
