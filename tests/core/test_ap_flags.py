"""pAP flag arrays: k-redundancy, majority circuit, retention behaviour."""

import pytest

from repro.core.ap_flags import PageApArray, PapFlag
from repro.core.flag_cells import FlagCellModel, PulseSettings
from repro.flash.errors import AddressError

#: a pulse strong enough that programming never misses (for determinism).
STRONG = PulseSettings(16.0, 200.0)

#: the paper-anchor weak pulse (47 % per-cell success).
WEAK = PulseSettings(14.0, 100.0)


@pytest.fixture
def array():
    return PageApArray(pages_per_block=12, pulse=STRONG, seed=1)


class TestLocking:
    def test_initially_enabled(self, array):
        for offset in range(12):
            assert not array.is_locked(offset)
            assert not array.is_disabled(offset)

    def test_lock_disables_page(self, array):
        array.lock(3)
        assert array.is_locked(3)
        assert array.is_disabled(3)

    def test_lock_leaves_others_enabled(self, array):
        array.lock(3)
        assert not array.is_disabled(2)
        assert not array.is_disabled(4)

    def test_locked_offsets_sorted(self, array):
        array.lock(5)
        array.lock(1)
        assert array.locked_offsets() == [1, 5]

    def test_out_of_range(self, array):
        with pytest.raises(AddressError):
            array.lock(12)
        with pytest.raises(AddressError):
            array.is_disabled(-1)

    def test_erase_reenables_everything(self, array):
        array.lock(0)
        array.lock(7)
        array.erase()
        assert array.locked_offsets() == []
        assert not array.is_disabled(0)

    def test_no_unlock_short_of_erase(self, array):
        """The API offers no per-page unlock -- only erase() clears flags."""
        assert not hasattr(array, "unlock")


class TestRedundancy:
    def test_k_must_be_odd(self):
        with pytest.raises(ValueError):
            PageApArray(pages_per_block=4, k=8)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            PageApArray(pages_per_block=4, k=-3)

    def test_weak_pulse_may_program_partially(self):
        array = PageApArray(pages_per_block=64, pulse=WEAK, seed=42)
        partial = 0
        for offset in range(64):
            flag = array.lock(offset)
            if 0 < flag.programmed_cells < flag.k:
                partial += 1
        assert partial > 10  # 47 % per-cell success -> mostly partial flags

    def test_relock_monotonically_programs_more_cells(self):
        array = PageApArray(pages_per_block=4, pulse=WEAK, seed=3)
        flag = array.lock(0)
        first = flag.programmed_cells
        for _ in range(20):
            flag = array.lock(0)
        assert flag.programmed_cells >= first
        assert flag.programmed_cells <= flag.k


class TestMajorityCircuit:
    def test_majority_threshold(self):
        model = FlagCellModel()
        flag = PapFlag(k=9, programmed_cells=5, lock_day=0.0)
        import numpy as np

        flag.flip_thresholds = np.ones(5)  # thresholds of 1.0 never flip
        assert flag.majority_disabled(model, STRONG, day=0.0)
        flag.programmed_cells = 4
        flag.flip_thresholds = np.ones(4)
        assert not flag.majority_disabled(model, STRONG, day=0.0)

    def test_unlocked_flag_reads_enabled(self):
        flag = PapFlag(k=9)
        assert not flag.majority_disabled(FlagCellModel(), STRONG, day=0.0)
        assert flag.cells_reading_programmed(FlagCellModel(), STRONG, 0.0) == 0


class TestRetentionBehaviour:
    def test_strong_lock_survives_five_years(self):
        array = PageApArray(pages_per_block=8, pulse=STRONG, seed=2)
        array.lock(0, day=0.0)
        assert array.is_disabled(0, day=1825.0)

    def test_weak_lock_can_fail_open(self):
        """A Region-II pulse eventually loses the majority (Fig. 9d)."""
        array = PageApArray(pages_per_block=256, pulse=WEAK, seed=5)
        for offset in range(256):
            array.lock(offset, day=0.0)
        failed = sum(
            not array.is_disabled(offset, day=1825.0) for offset in range(256)
        )
        assert failed > 50

    def test_queries_are_deterministic(self):
        array = PageApArray(pages_per_block=4, pulse=WEAK, seed=9)
        array.lock(0, day=0.0)
        first = [array.is_disabled(0, day=d) for d in (0, 365, 1825)]
        second = [array.is_disabled(0, day=d) for d in (0, 365, 1825)]
        assert first == second

    def test_flips_monotone_in_time(self):
        """Once a cell flips it stays flipped: disability never recovers."""
        array = PageApArray(pages_per_block=16, pulse=WEAK, seed=11)
        for offset in range(16):
            array.lock(offset, day=0.0)
        for offset in range(16):
            states = [
                array.is_disabled(offset, day=d)
                for d in (0.0, 100.0, 365.0, 1825.0, 10000.0)
            ]
            # once False (failed open), never True again
            if False in states:
                first_false = states.index(False)
                assert all(not s for s in states[first_false:])

    def test_lock_day_offsets_retention(self):
        array = PageApArray(pages_per_block=4, pulse=STRONG, seed=1)
        array.lock(0, day=1000.0)
        # elapsed time is measured from the lock, not from zero
        assert array.is_disabled(0, day=1000.0)
        assert array.is_disabled(0, day=1001.0)
