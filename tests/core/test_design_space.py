"""Figure 9 / Figure 12 design-space exploration and selection."""

import numpy as np
import pytest

from repro.core.design_space import (
    RETENTION_DAYS_GRID,
    ROMAN_LABELS,
    explore_block_design,
    explore_plock_design,
)
from repro.flash import constants


@pytest.fixture(scope="module")
def plock():
    return explore_plock_design()


@pytest.fixture(scope="module")
def block():
    return explore_block_design()


class TestPlockExploration:
    def test_grid_covered(self, plock):
        assert len(plock.points) == 15

    def test_region_counts_match_paper(self, plock):
        """Paper: 4 combos in Region I, 5 in Region II, 6 candidates."""
        regions = [p.region for p in plock.points]
        assert regions.count("region-i") == 4
        assert regions.count("region-ii") == 5
        assert regions.count("candidate") == 6

    def test_candidate_labels_complete(self, plock):
        assert set(plock.candidates) == set(ROMAN_LABELS)

    def test_paper_label_anchors(self, plock):
        """(i)=(Vp4,150us), (ii)=(Vp4,100us), (vi)=(Vp2,200us)."""
        assert plock.candidates["i"].vpgm == pytest.approx(15.5)
        assert plock.candidates["i"].latency_us == 150.0
        assert plock.candidates["ii"].vpgm == pytest.approx(15.5)
        assert plock.candidates["ii"].latency_us == 100.0
        assert plock.candidates["vi"].vpgm == pytest.approx(14.5)
        assert plock.candidates["vi"].latency_us == 200.0

    def test_selected_is_combination_ii(self, plock):
        """The paper's final pLock design: (Vp4, 100us) -> tpLock = 100us."""
        assert plock.selected_label == "ii"
        assert plock.selected_pulse.latency_us == constants.T_PLOCK_US

    def test_retention_curves_monotone(self, plock):
        for label in ROMAN_LABELS:
            errors = plock.retention_errors[label]
            assert np.all(np.diff(errors) >= -1e-12)

    def test_weaker_candidates_lose_more_cells(self, plock):
        """(vi) loses more flag cells than (i) at every horizon."""
        assert np.all(
            plock.retention_errors["vi"] >= plock.retention_errors["i"]
        )

    def test_failure_probs_bounded(self, plock):
        for label in ROMAN_LABELS:
            probs = plock.failure_probs[label]
            assert np.all((0.0 <= probs) & (probs <= 1.0))

    def test_point_lookup(self, plock):
        point = plock.point_for(plock.selected_pulse)
        assert point.label == "ii"
        assert point.region == "candidate"

    def test_point_lookup_missing(self, plock):
        from repro.core.flag_cells import PulseSettings

        with pytest.raises(KeyError):
            plock.point_for(PulseSettings(1.0, 1.0))


class TestBlockExploration:
    def test_grid_covered(self, block):
        assert len(block.points) == 18

    def test_six_candidates(self, block):
        regions = [p.region for p in block.points]
        assert regions.count("candidate") == 6
        assert regions.count("region-i") == 12

    def test_paper_label_anchors(self, block):
        """(i)=(Vb6,400us), (ii)=(Vb6,300us), (vi)=(Vb5,200us)."""
        assert block.candidates["i"].vpgm == pytest.approx(18.0)
        assert block.candidates["i"].latency_us == 400.0
        assert block.candidates["ii"].vpgm == pytest.approx(18.0)
        assert block.candidates["ii"].latency_us == 300.0
        assert block.candidates["vi"].vpgm == pytest.approx(17.0)
        assert block.candidates["vi"].latency_us == 200.0

    def test_selected_is_combination_ii(self, block):
        """The paper's final bLock design: (Vb6, 300us) -> tbLock = 300us."""
        assert block.selected_label == "ii"
        assert block.selected_pulse.latency_us == constants.T_BLOCK_LOCK_US

    def test_vth_curves_decay(self, block):
        for label in ROMAN_LABELS:
            curve = block.vth_curves[label]
            assert np.all(np.diff(curve) <= 1e-12)

    def test_vb5_candidates_fail_requirement(self, block):
        """Fig. 12(b): (iv), (v), (vi) decay below 3 V within 5 years."""
        for label in ("iv", "v", "vi"):
            assert block.vth_curves[label][-3] < constants.SSL_CUTOFF_VTH

    def test_days_grid_includes_requirements(self):
        assert constants.RETENTION_1Y_DAYS in RETENTION_DAYS_GRID
        assert constants.RETENTION_5Y_DAYS in RETENTION_DAYS_GRID
