"""Flag-cell physics: the calibrated responses behind Figure 9."""

import numpy as np
import pytest

from repro.core.flag_cells import (
    FlagCellModel,
    PulseSettings,
    default_plock_pulse,
    plock_design_space,
)
from repro.flash import constants


@pytest.fixture(scope="module")
def model():
    return FlagCellModel()


def pulse(v_index: int, latency: float) -> PulseSettings:
    return PulseSettings(
        constants.PLOCK_VPGM_BASE + v_index * constants.PLOCK_VPGM_STEP, latency
    )


class TestDesignSpace:
    def test_grid_size(self):
        assert len(plock_design_space()) == 15  # 5 voltages x 3 latencies

    def test_grid_unique(self):
        assert len(set(plock_design_space())) == 15

    def test_default_pulse_is_vp4_100us(self):
        p = default_plock_pulse()
        assert p.vpgm == pytest.approx(15.5)  # Vp4
        assert p.latency_us == 100.0


class TestProgramSuccess:
    def test_weakest_pulse_near_paper_anchor(self, model):
        """Paper: (Vp1, 100us) programs only 47.3 % of flag cells."""
        success = model.program_success_prob(pulse(0, 100))
        assert success == pytest.approx(0.473, abs=0.03)

    def test_success_monotone_in_voltage(self, model):
        probs = [model.program_success_prob(pulse(i, 100)) for i in range(5)]
        assert probs == sorted(probs)

    def test_success_monotone_in_latency(self, model):
        probs = [
            model.program_success_prob(pulse(1, t)) for t in (100, 150, 200)
        ]
        assert probs == sorted(probs)

    def test_final_pulse_programs_reliably(self, model):
        assert model.programs_reliably(default_plock_pulse())

    def test_weak_pulses_fail_reliability(self, model):
        for p in (pulse(0, 100), pulse(0, 150), pulse(0, 200), pulse(1, 100)):
            assert not model.programs_reliably(p)


class TestDataDisturb:
    def test_factor_at_least_one(self, model):
        for p in plock_design_space():
            assert model.data_rber_factor(p) >= 1.0

    def test_strongest_pulse_disturbs_about_20_percent(self, model):
        """Fig. 9(b) tops out near a 1.2x RBER factor."""
        worst = max(model.data_rber_factor(p) for p in plock_design_space())
        assert 1.10 <= worst <= 1.25

    def test_final_pulse_does_not_disturb(self, model):
        assert not model.disturbs_data(default_plock_pulse())

    def test_region_i_is_high_voltage_or_long_pulse(self, model):
        region_i = [p for p in plock_design_space() if model.disturbs_data(p)]
        assert len(region_i) == 4
        for p in region_i:
            assert p.vpgm >= 15.5  # Vp4 or Vp5

    def test_disturb_monotone_in_voltage(self, model):
        factors = [model.data_rber_factor(pulse(i, 200)) for i in range(5)]
        assert factors == sorted(factors)


class TestRetention:
    def test_zero_days_no_flips(self, model):
        assert model.retention_flip_prob(default_plock_pulse(), 0.0) == 0.0

    def test_flip_prob_monotone_in_days(self, model):
        p = default_plock_pulse()
        probs = [model.retention_flip_prob(p, d) for d in (10, 100, 365, 1825)]
        assert probs == sorted(probs)

    def test_stronger_pulse_retains_better(self, model):
        weak = model.retention_flip_prob(pulse(1, 200), 1825)
        strong = model.retention_flip_prob(pulse(3, 150), 1825)
        assert strong < weak

    def test_paper_anchor_vi_loses_about_5_of_9(self, model):
        """Fig. 9(d): combination (vi) = (Vp2, 200us) -> ~5 flipped cells."""
        errors = model.expected_retention_errors(pulse(1, 200), 1825.0)
        assert 3.0 <= errors <= 5.5

    def test_paper_anchor_i_loses_at_most_2(self, model):
        """Fig. 9(d): combination (i) = (Vp4, 150us) -> at most ~2 errors."""
        errors = model.expected_retention_errors(pulse(3, 150), 1825.0)
        assert errors <= 2.0

    def test_selected_pulse_majority_safe_at_5_years(self, model):
        fail = model.flag_failure_prob(default_plock_pulse(), 1825.0)
        assert fail < 0.01

    def test_weak_pulse_majority_unsafe_at_5_years(self, model):
        fail = model.flag_failure_prob(pulse(1, 200), 1825.0)
        assert fail > 0.10

    def test_failure_prob_is_binomial_tail(self, model):
        """k=1 degenerates to the per-cell flip probability."""
        p = default_plock_pulse()
        assert model.flag_failure_prob(p, 365.0, k=1) == pytest.approx(
            model.retention_flip_prob(p, 365.0)
        )


class TestSampling:
    def test_sample_programmed_cells_bounds(self, model, rng):
        for _ in range(20):
            n = model.sample_programmed_cells(pulse(0, 100), 9, rng)
            assert 0 <= n <= 9

    def test_sample_retention_errors_bounds(self, model, rng):
        for _ in range(20):
            n = model.sample_retention_errors(pulse(1, 200), 1825.0, 9, rng)
            assert 0 <= n <= 9

    def test_sampling_statistics_match_expectation(self, model, rng):
        p = pulse(1, 200)
        samples = [
            model.sample_retention_errors(p, 1825.0, 9, rng) for _ in range(3000)
        ]
        assert np.mean(samples) == pytest.approx(
            model.expected_retention_errors(p, 1825.0), rel=0.1
        )
