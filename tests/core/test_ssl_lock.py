"""bLock SSL-cell model (Figures 11 and 12)."""

import pytest

from repro.core.flag_cells import PulseSettings
from repro.core.ssl_lock import (
    BlockApFlag,
    SslLockModel,
    block_design_space,
    default_block_pulse,
    read_rber_vs_ssl_vth,
)
from repro.flash import constants


@pytest.fixture(scope="module")
def model():
    return SslLockModel()


def pulse(v_index: int, latency: float) -> PulseSettings:
    return PulseSettings(
        constants.BLOCK_VPGM_BASE + v_index * constants.BLOCK_VPGM_STEP, latency
    )


class TestDesignSpace:
    def test_grid_size(self):
        assert len(block_design_space()) == 18  # 6 voltages x 3 latencies

    def test_default_pulse_is_vb6_300us(self):
        p = default_block_pulse()
        assert p.vpgm == pytest.approx(18.0)
        assert p.latency_us == 300.0


class TestInitialVth:
    def test_monotone_in_voltage(self, model):
        vths = [model.initial_vth(pulse(i, 300)) for i in range(6)]
        assert vths == sorted(vths)

    def test_monotone_in_latency(self, model):
        vths = [model.initial_vth(pulse(5, t)) for t in (200, 300, 400)]
        assert vths == sorted(vths)

    def test_strongest_pulse_near_5v(self, model):
        """Fig. 12(b): (i) = (Vb6, 400us) starts near the top of the axis."""
        assert 4.5 <= model.initial_vth(pulse(5, 400)) <= 5.0

    def test_low_voltages_miss_cutoff(self, model):
        for i in range(4):  # Vb1..Vb4
            for t in (200, 300, 400):
                assert not model.reaches_cutoff(pulse(i, t))

    def test_candidates_reach_cutoff(self, model):
        for i in (4, 5):  # Vb5, Vb6
            for t in (200, 300, 400):
                assert model.reaches_cutoff(pulse(i, t))


class TestRetentionDecay:
    def test_vth_decays_over_time(self, model):
        p = default_block_pulse()
        vths = [model.vth_after(p, d) for d in (0, 10, 365, 1825)]
        assert vths == sorted(vths, reverse=True)

    def test_never_below_neutral_floor(self, model):
        assert model.vth_after(pulse(4, 200), 1e6) >= model.vth_floor

    def test_paper_anchor_i_above_4v_after_5_years(self, model):
        """Fig. 12(b): combination (i) stays above 4 V after 5 years."""
        assert model.vth_after(pulse(5, 400), 1825.0) > 4.0

    def test_paper_anchor_vi_fails_within_a_year(self, model):
        """Fig. 12(b): (vi) = (Vb5, 200us) drops below 3 V before 1 year."""
        assert model.vth_after(pulse(4, 200), 365.0) < constants.SSL_CUTOFF_VTH

    def test_selected_pulse_blocks_for_5_years(self, model):
        assert model.is_blocking(default_block_pulse(), 1825.0)

    def test_200us_pulse_fails_requirement(self, model):
        """Why the paper chose 300us: (Vb6, 200us) misses the 5-year bar."""
        assert not model.is_blocking(pulse(5, 200), 1825.0)

    def test_blocking_horizon_consistent(self, model):
        p = default_block_pulse()
        horizon = model.blocking_horizon_days(p)
        if horizon < 20 * 365:
            assert model.is_blocking(p, horizon * 0.99)
            assert not model.is_blocking(p, horizon * 1.01)

    def test_horizon_zero_when_never_blocking(self, model):
        assert model.blocking_horizon_days(pulse(0, 200)) == 0.0

    def test_shallower_program_decays_faster(self, model):
        shallow = model.decay_rate(3.5)
        deep = model.decay_rate(4.8)
        assert shallow > deep


class TestFigure11b:
    def test_rber_crosses_limit_at_3v(self):
        """Fig. 11(b): reads fail once the SSL center Vth exceeds ~3 V."""
        assert read_rber_vs_ssl_vth(3.0, pe_cycles=1000) == pytest.approx(1.0, abs=0.05)
        assert read_rber_vs_ssl_vth(3.5, pe_cycles=1000) > 1.0
        assert read_rber_vs_ssl_vth(2.0, pe_cycles=1000) < 1.0

    def test_monotone_in_vth(self):
        vals = [read_rber_vs_ssl_vth(v) for v in (1, 2, 3, 4, 5)]
        assert vals == sorted(vals)

    def test_cycling_raises_baseline(self):
        assert read_rber_vs_ssl_vth(1.0, 1000) > read_rber_vs_ssl_vth(1.0, 0)

    def test_saturates_below_5x(self):
        assert read_rber_vs_ssl_vth(6.0, 1000) < 5.0


class TestBlockApFlag:
    def test_lock_unlock_cycle(self, model):
        flag = BlockApFlag(model=model, pulse=default_block_pulse())
        assert not flag.is_disabled()
        flag.lock(day=0.0)
        assert flag.locked
        assert flag.is_disabled(day=0.0)
        flag.erase()
        assert not flag.is_disabled(day=0.0)

    def test_lock_is_idempotent(self, model):
        flag = BlockApFlag(model=model, pulse=default_block_pulse())
        flag.lock(day=5.0)
        flag.lock(day=500.0)  # second lock must not reset the clock
        assert flag.lock_day == 5.0

    def test_weak_lock_expires(self, model):
        flag = BlockApFlag(model=model, pulse=pulse(4, 200))
        flag.lock(day=0.0)
        assert flag.is_disabled(day=0.0)
        assert not flag.is_disabled(day=1825.0)
