"""EvanescoChip: pLock/bLock commands and AP-gated reads (Figure 7)."""

import pytest

from repro.core.evanesco_chip import EvanescoChip
from repro.flash.chip import ERASED_DATA, ZERO_DATA
from repro.flash.errors import LockedBlockError, LockedPageError
from repro.flash.geometry import small_geometry


@pytest.fixture
def chip():
    return EvanescoChip(small_geometry(blocks=4, wordlines=4), seed=1)


class TestPLock:
    def test_locked_page_reads_zeros(self, chip):
        chip.program_page(0, "secret")
        chip.plock(0)
        result = chip.read_page(0)
        assert result.data == ZERO_DATA
        assert result.blocked

    def test_lock_does_not_affect_siblings(self, chip):
        """Figure 8: pAP flags are per page, not per wordline."""
        for offset in range(3):  # LSB/CSB/MSB of WL0
            chip.program_page(offset, f"d{offset}")
        chip.plock(1)
        assert chip.read_page(0).data == "d0"
        assert chip.read_page(1).data == ZERO_DATA
        assert chip.read_page(2).data == "d2"

    def test_plock_latency(self, chip):
        assert chip.plock(0) == chip.t_plock_us

    def test_plock_counts_stats(self, chip):
        chip.plock(0)
        chip.plock(1)
        assert chip.stats.plocks == 2

    def test_plock_records_wordline_disturb(self, chip):
        chip.plock(0)
        chip.plock(1)  # same WL0
        chip.plock(3)  # WL1
        assert chip.blocks[0].wl_disturb_pulses[0] == 2
        assert chip.blocks[0].wl_disturb_pulses[1] == 1

    def test_strict_read_raises(self, chip):
        chip.program_page(0, "x")
        chip.plock(0)
        with pytest.raises(LockedPageError):
            chip.read_page(0, strict=True)

    def test_page_locked_query(self, chip):
        chip.plock(0)
        assert chip.page_locked(0)
        assert not chip.page_locked(1)


class TestBLock:
    def test_block_lock_blocks_every_page(self, chip):
        ppb = chip.geometry.pages_per_block
        for offset in range(ppb):
            chip.program_page(offset, f"d{offset}")
        chip.block_lock(0)
        for offset in range(ppb):
            assert chip.read_page(offset).data == ZERO_DATA

    def test_block_lock_leaves_other_blocks(self, chip):
        chip.program_page(0, "a")
        ppn_b1 = chip.geometry.ppn(1, 0)
        chip.program_page(ppn_b1, "b")
        chip.block_lock(0)
        assert chip.read_page(ppn_b1).data == "b"

    def test_bap_checked_before_pap(self, chip):
        """Figure 7(b): a bLocked block blocks even pAP-enabled pages."""
        chip.program_page(0, "x")
        chip.block_lock(0)
        with pytest.raises(LockedBlockError):
            chip.read_page(0, strict=True)

    def test_block_lock_latency(self, chip):
        assert chip.block_lock(0) == chip.t_block_lock_us

    def test_block_lock_counts_stats(self, chip):
        chip.block_lock(0)
        assert chip.stats.blocks_locked == 1

    def test_block_locked_query(self, chip):
        chip.block_lock(2)
        assert chip.block_locked(2)
        assert not chip.block_locked(0)


class TestUnlockViaErase:
    def test_erase_clears_plock(self, chip):
        chip.program_page(0, "x")
        chip.plock(0)
        chip.erase_block(0)
        assert not chip.page_locked(0)
        assert chip.read_page(0).data == ERASED_DATA

    def test_erase_clears_block_lock(self, chip):
        chip.block_lock(0)
        chip.erase_block(0)
        assert not chip.block_locked(0)

    def test_data_destroyed_before_reaccess(self, chip):
        """The security core: unlock implies the data is already erased."""
        chip.program_page(0, "secret")
        chip.plock(0)
        chip.erase_block(0)
        result = chip.read_page(0)
        assert result.data != "secret"

    def test_reprogram_after_erase(self, chip):
        chip.program_page(0, "old")
        chip.block_lock(0)
        chip.erase_block(0)
        chip.program_page(0, "new")
        assert chip.read_page(0).data == "new"


class TestForensics:
    def test_raw_dump_honours_plock(self, chip):
        chip.program_page(0, "keep")
        chip.program_page(1, "gone")
        chip.plock(1)
        dump = chip.raw_dump()
        assert dump[0] == "keep"
        assert 1 not in dump

    def test_raw_dump_honours_block_lock(self, chip):
        chip.program_page(0, "gone")
        ppn_b1 = chip.geometry.ppn(1, 0)
        chip.program_page(ppn_b1, "keep")
        chip.block_lock(0)
        dump = chip.raw_dump()
        assert 0 not in dump
        assert dump[ppn_b1] == "keep"

    def test_locked_page_count(self, chip):
        chip.plock(0)
        chip.plock(5)
        assert chip.locked_page_count() == 2


class TestRetentionIntegration:
    def test_lock_stays_disabled_at_system_timescale(self, chip):
        """Simulation times are microseconds; retention flips need days."""
        chip.program_page(0, "x")
        chip.plock(0, now=0.0)
        one_hour_us = 3600.0 * 1e6
        assert chip.page_locked(0, now=one_hour_us)

    def test_reads_still_cost_time_when_blocked(self, chip):
        chip.plock(0)
        before = chip.stats.busy_time_us
        chip.read_page(0)
        assert chip.stats.busy_time_us == before + chip.t_read_us
