"""Lock aging end-to-end: why the Figure 9/12 qualification matters.

A lock is a physical charge state, not a database row.  If the design
had shipped a Region-II pulse, locked flags would decay and 'sanitized'
data would become readable again years later -- these tests demonstrate
that failure mode on the full chip, and that the paper's selected design
does not exhibit it.
"""

from repro.core.evanesco_chip import EvanescoChip, US_PER_DAY
from repro.core.flag_cells import PulseSettings
from repro.flash.chip import ZERO_DATA
from repro.flash.geometry import small_geometry

FIVE_YEARS_US = 1825.0 * US_PER_DAY

#: the paper's selected pLock pulse (combination (ii)).
SELECTED = PulseSettings(15.5, 100.0)

#: a Region-II reject: programs only ~47 % of flag cells.
REJECTED = PulseSettings(14.0, 100.0)

#: a retention-marginal candidate: combination (vi) = (Vp2, 200us).
MARGINAL = PulseSettings(14.5, 200.0)


def make_chip(pulse: PulseSettings, seed: int = 0) -> EvanescoChip:
    return EvanescoChip(
        small_geometry(blocks=8, wordlines=8), plock_pulse=pulse, seed=seed
    )


class TestSelectedDesignHoldsForFiveYears:
    def test_locked_pages_stay_zero_after_five_years(self):
        chip = make_chip(SELECTED)
        for ppn in range(24):
            chip.program_page(ppn, f"secret-{ppn}")
            chip.plock(ppn, now=0.0)
        leaked = sum(
            chip.read_page(ppn, now=FIVE_YEARS_US).data != ZERO_DATA
            for ppn in range(24)
        )
        assert leaked == 0

    def test_block_lock_stays_for_five_years(self):
        chip = make_chip(SELECTED)
        chip.program_page(0, "secret")
        chip.block_lock(0, now=0.0)
        assert chip.read_page(0, now=FIVE_YEARS_US).data == ZERO_DATA

    def test_forensic_dump_empty_after_aging(self):
        chip = make_chip(SELECTED)
        chip.program_page(0, "secret")
        chip.plock(0)
        assert "secret" not in chip.raw_dump(now=FIVE_YEARS_US).values()


class TestRejectedDesignsLeak:
    def test_region_ii_pulse_fails_open_quickly(self):
        """A 47 %-success pulse cannot even hold the majority at lock
        time for many pages -- Region II is rejected for good reason."""
        chip = make_chip(REJECTED, seed=3)
        locked_but_readable = 0
        for ppn in range(96):
            chip.program_page(ppn, f"secret-{ppn}")
            chip.plock(ppn, now=0.0)
            if chip.read_page(ppn, now=0.0).data != ZERO_DATA:
                locked_but_readable += 1
        assert locked_but_readable > 10

    def test_marginal_pulse_leaks_after_five_years(self):
        """Fig. 9(d)'s point, end to end: combination (vi) loses the
        majority over the 5-year horizon on a measurable fraction of
        pages -- the attacker just has to wait."""
        chip = make_chip(MARGINAL, seed=1)
        n = chip.geometry.pages_per_chip
        for ppn in range(n):
            chip.program_page(ppn, f"secret-{ppn}")
            chip.plock(ppn, now=0.0)
        fresh_leaks = sum(
            chip.read_page(ppn, now=0.0).data != ZERO_DATA for ppn in range(n)
        )
        aged_leaks = sum(
            chip.read_page(ppn, now=FIVE_YEARS_US).data != ZERO_DATA
            for ppn in range(n)
        )
        assert aged_leaks > fresh_leaks
        assert aged_leaks / n > 0.05

    def test_aged_leaks_visible_to_forensics(self):
        chip = make_chip(MARGINAL, seed=2)
        n = chip.geometry.pages_per_chip
        for ppn in range(n):
            chip.program_page(ppn, f"secret-{ppn}")
            chip.plock(ppn, now=0.0)
        fresh = chip.raw_dump(now=0.0)
        aged = chip.raw_dump(now=FIVE_YEARS_US)
        assert len(aged) > len(fresh)
