"""Monte-Carlo flag qualification (Figure 9(d) methodology)."""

import pytest

from repro.core.design_space import explore_plock_design
from repro.core.flag_cells import PulseSettings
from repro.core.qualification import qualify_candidates, qualify_pulse
from repro.flash import constants

STRONG = PulseSettings(15.5, 100.0)   # combination (ii), the final design
WEAK = PulseSettings(14.5, 200.0)     # combination (vi)


class TestQualifyPulse:
    def test_fresh_flags_have_few_errors(self):
        q = qualify_pulse(STRONG, days=0.0, n_flags=5000)
        assert q.mean_errors < 0.5
        assert q.fail_open == 0

    def test_selected_design_qualifies_at_one_year(self):
        q = qualify_pulse(STRONG, days=constants.RETENTION_1Y_DAYS, n_flags=20_000)
        assert q.qualifies

    def test_weak_design_fails_at_five_years(self):
        """Fig. 9(d): combination (vi) cannot guarantee the flag value."""
        q = qualify_pulse(WEAK, days=constants.RETENTION_5Y_DAYS, n_flags=5000)
        assert not q.qualifies
        assert q.fail_open_rate > 0.05

    def test_observed_errors_match_paper_anchors(self):
        """(vi) loses ~5 cells at 5 years; (i) at most ~2 typically."""
        weak = qualify_pulse(WEAK, days=1825.0, n_flags=5000)
        strong = qualify_pulse(PulseSettings(15.5, 150.0), days=1825.0, n_flags=5000)
        assert weak.max_errors >= 5
        assert weak.mean_errors > 3.0
        assert strong.mean_errors <= 2.0

    def test_deterministic_given_seed(self):
        a = qualify_pulse(WEAK, 1825.0, n_flags=1000, seed=4)
        b = qualify_pulse(WEAK, 1825.0, n_flags=1000, seed=4)
        assert a == b

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            qualify_pulse(STRONG, 0.0, n_flags=0)

    def test_errors_monotone_in_days(self):
        qs = [
            qualify_pulse(WEAK, d, n_flags=5000).mean_errors
            for d in (0.0, 365.0, 1825.0)
        ]
        assert qs == sorted(qs)


class TestQualifyCandidates:
    def test_full_figure9_candidate_set(self):
        result = explore_plock_design()
        quals = qualify_candidates(result.candidates, n_flags=5000)
        assert set(quals) == set(result.candidates)
        # the selected combination qualifies; the weakest does not
        assert quals[result.selected_label].fail_open_rate < 0.02
        assert not quals["vi"].qualifies

    def test_stronger_labels_age_better(self):
        result = explore_plock_design()
        quals = qualify_candidates(result.candidates, n_flags=5000)
        assert quals["i"].mean_errors <= quals["vi"].mean_errors
