"""Per-rule positive/negative cases on synthetic source files.

Each snippet is written under a ``repro/<dir>/`` shaped tmp tree so the
directory-scoped rules see realistic ``rel_parts``.
"""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_file


def _lint(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return lint_file(path)


def _ids(findings):
    return sorted({f.rule_id for f in findings})


class TestSim01Encapsulation:
    def test_direct_counter_mutation_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/rogue.py",
            """
            def f(self, gb):
                self.status._live[gb] -= 1
            """,
        )
        assert _ids(findings) == ["SIM01"]
        assert "_live" in findings[0].message

    def test_status_array_read_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/rogue.py",
            """
            def f(self, gppa):
                return self.status._status[gppa]
            """,
        )
        assert _ids(findings) == ["SIM01"]

    def test_owner_module_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/page_status.py",
            """
            class StatusTable:
                def set_invalid(self, gppa):
                    self._status[gppa] = 2
                    self._invalid[self.block_of(gppa)] += 1
            """,
        )
        assert findings == []

    def test_accessor_use_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/good.py",
            """
            def f(self, gb):
                return self.status.live_count(gb)
            """,
        )
        assert findings == []


class TestSim02Accounting:
    UNACCOUNTED = """
    class Ftl:
        def lock_it(self, chip, ppn):
            chip.plock(ppn)
    """

    ACCOUNTED = """
    class Ftl:
        def lock_it(self, chip_id, ppn):
            self.chips[chip_id].plock(ppn)
            self.timing.plock(chip_id)
            self.stats.plocks += 1
    """

    def test_unaccounted_chip_op_flagged(self, tmp_path):
        findings = _lint(tmp_path, "repro/ftl/x.py", self.UNACCOUNTED)
        # SIM05 also fires (plock with no on_sanitize); SIM02 is the focus.
        assert "SIM02" in _ids(findings)
        sim02 = next(f for f in findings if f.rule_id == "SIM02")
        assert "self.timing.*" in sim02.message
        assert "self.stats.*" in sim02.message

    def test_accounted_chip_op_clean(self, tmp_path):
        findings = _lint(tmp_path, "repro/ftl/x.py", self.ACCOUNTED)
        # SIM05 would fire for the missing on_sanitize; SIM02 must not.
        assert "SIM02" not in _ids(findings)

    def test_timing_only_still_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            class Ftl:
                def erase_it(self, chip_id, block):
                    self.chips[chip_id].erase_block(block)
                    self.timing.erase(chip_id)
            """,
        )
        assert "SIM02" in _ids(findings)
        assert "self.stats.*" in findings[0].message

    def test_timing_model_call_is_not_a_chip_op(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            class Ftl:
                def account_only(self, chip_id):
                    self.timing.plock(chip_id)
            """,
        )
        assert findings == []

    def test_outside_ftl_dir_not_scoped(self, tmp_path):
        findings = _lint(tmp_path, "repro/host/x.py", self.UNACCOUNTED)
        assert "SIM02" not in _ids(findings)

    def test_suppression(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            class Ftl:
                def lock_it(self, chip, ppn):
                    chip.plock(ppn)  # lint: disable=SIM02,SIM05
            """,
        )
        assert findings == []


class TestSim03Determinism:
    def test_module_level_random_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/workloads/x.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert _ids(findings) == ["SIM03"]

    def test_unseeded_random_instance_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/workloads/x.py",
            """
            import random

            rng = random.Random()
            """,
        )
        assert _ids(findings) == ["SIM03"]

    def test_seeded_random_instance_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/workloads/x.py",
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
        )
        assert findings == []

    def test_numpy_global_draw_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            import numpy as np

            def noise(n):
                return np.random.normal(size=n)
            """,
        )
        assert "SIM03" in _ids(findings)

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
        )
        assert _ids(findings) == ["SIM03"]

    def test_seeded_default_rng_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert findings == []

    def test_generator_annotation_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            import numpy as np

            def draw(rng: np.random.Generator):
                return rng.normal()
            """,
        )
        assert findings == []


class TestSim04FloatEquality:
    def test_float_eq_in_flash_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            def check(rber):
                return rber == 0.0
            """,
        )
        assert _ids(findings) == ["SIM04"]

    def test_float_neq_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            def check(vth):
                return vth != -1.5
            """,
        )
        assert _ids(findings) == ["SIM04"]

    def test_ordered_comparison_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            def check(rber):
                return rber <= 0.0
            """,
        )
        assert findings == []

    def test_int_literal_eq_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/flash/x.py",
            """
            def check(count):
                return count == 0
            """,
        )
        assert findings == []

    def test_outside_flash_not_scoped(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def check(ratio):
                return ratio == 1.0
            """,
        )
        assert findings == []


class TestSim05Observer:
    SILENT = """
    class Ftl:
        def lock_it(self, chip_id, ppn):
            self.chips[chip_id].plock(ppn)
            self.timing.plock(chip_id)
            self.stats.plocks += 1
    """

    NOTIFYING = """
    class Ftl:
        def lock_it(self, chip_id, ppn, gppa):
            self.chips[chip_id].plock(ppn)
            self.timing.plock(chip_id)
            self.stats.plocks += 1
            self.observer.on_sanitize(gppa, "plock")
    """

    def test_silent_sanitize_flagged(self, tmp_path):
        findings = _lint(tmp_path, "repro/ftl/x.py", self.SILENT)
        assert _ids(findings) == ["SIM05"]
        assert "on_sanitize" in findings[0].message

    def test_notifying_sanitize_clean(self, tmp_path):
        findings = _lint(tmp_path, "repro/ftl/x.py", self.NOTIFYING)
        assert findings == []

    def test_scrub_wordline_covered(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            class Ftl:
                def scrub_it(self, chip_id, block, wl):
                    self.chips[chip_id].scrub_wordline(block, wl)
                    self.timing.scrub(chip_id)
                    self.stats.scrubs += 1
            """,
        )
        assert _ids(findings) == ["SIM05"]

    def test_outside_ftl_dir_not_scoped(self, tmp_path):
        findings = _lint(tmp_path, "repro/core/x.py", self.SILENT)
        assert "SIM05" not in _ids(findings)


class TestSim06SwallowedFlashError:
    def test_pass_handler_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppn):
                try:
                    return chip.read_page(ppn)
                except FlashError:
                    pass
            """,
        )
        assert _ids(findings) == ["SIM06"]
        assert "FlashError" in findings[0].message

    def test_tuple_catch_with_continue_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppns):
                out = []
                for ppn in ppns:
                    try:
                        out.append(chip.read_page(ppn))
                    except (UncorrectableError, ProgramFailError):
                        continue
                return out
            """,
        )
        assert _ids(findings) == ["SIM06"]

    def test_qualified_name_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def f(chip, block):
                try:
                    chip.erase_block(block)
                except errors.EraseFailError:
                    return None
            """,
        )
        assert _ids(findings) == ["SIM06"]

    def test_reraise_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppn):
                try:
                    return chip.read_page(ppn)
                except UncorrectableError:
                    raise
            """,
        )
        assert findings == []

    def test_stats_accounting_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppn):
                try:
                    return chip.read_page(ppn)
                except UncorrectableError:
                    self.stats.read_failures += 1
                    return None
            """,
        )
        assert findings == []

    def test_using_the_exception_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppn, log):
                try:
                    return chip.read_page(ppn)
                except UncorrectableError as exc:
                    log.append(exc)
                    return None
            """,
        )
        assert findings == []

    def test_unrelated_exception_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, mapping, lpa):
                try:
                    return mapping[lpa]
                except KeyError:
                    return None
            """,
        )
        assert findings == []

    def test_power_loss_not_covered(self, tmp_path):
        # PowerLossInjected is a simulation control signal, not a flash
        # error: catching it (in harness code) is legitimate
        findings = _lint(
            tmp_path,
            "repro/analysis/x.py",
            """
            def f(ssd, requests):
                try:
                    for request in requests:
                        ssd.submit(request)
                except PowerLossInjected:
                    return True
                return False
            """,
        )
        assert findings == []

    def test_suppression_comment_works(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/x.py",
            """
            def f(self, chip, ppn):
                try:
                    return chip.read_page(ppn)
                except FlashError:  # lint: disable=SIM06
                    pass
            """,
        )
        assert findings == []


class TestSim07WallClock:
    def test_time_import_in_sim_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/engine.py",
            """
            import time

            def handler(event):
                return time.monotonic()
            """,
        )
        assert _ids(findings) == ["SIM07"]
        assert len(findings) == 2  # the import and the call

    def test_datetime_from_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/metrics.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.utcnow()
            """,
        )
        assert "SIM07" in _ids(findings)

    def test_module_level_random_draw_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/arrivals.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        # SIM03 also fires on the unseeded draw; SIM07 adds the
        # engine-specific ban
        assert "SIM07" in _ids(findings)

    def test_random_seed_flagged_even_though_seeded(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/arrivals.py",
            """
            import random

            def init(seed):
                random.seed(seed)
            """,
        )
        assert "SIM07" in _ids(findings)

    def test_seeded_instance_rng_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/arrivals.py",
            """
            import random

            class Arrivals:
                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def interarrival_us(self):
                    return self._rng.expovariate(1.0)
            """,
        )
        assert "SIM07" not in _ids(findings)
        assert findings == []

    def test_outside_sim_dir_not_scoped(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/bench_engine.py",
            """
            import time

            def bench(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
        )
        assert "SIM07" not in _ids(findings)

    def test_suppression_comment_works(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/engine.py",
            """
            import time  # lint: disable=SIM07
            """,
        )
        assert findings == []


class TestSim08NoPrint:
    def test_print_in_library_module_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/base.py",
            """
            def f(x):
                print("debugging", x)
                return x
            """,
        )
        assert _ids(findings) == ["SIM08"]
        assert findings[0].line == 3

    def test_cli_module_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/cli.py",
            """
            def cmd(args):
                print("the console is cli.py's job")
            """,
        )
        assert "SIM08" not in _ids(findings)

    def test_outside_package_not_scoped(self, tmp_path):
        findings = _lint(
            tmp_path,
            "scripts/tool.py",
            """
            print("standalone scripts may talk")
            """,
        )
        assert "SIM08" not in _ids(findings)

    def test_print_as_value_clean(self, tmp_path):
        # referencing print (echo=print default) is not calling it
        findings = _lint(
            tmp_path,
            "repro/checkers/lint.py",
            """
            def run(paths, echo=print):
                echo("report")
            """,
        )
        assert "SIM08" not in _ids(findings)

    def test_shadowed_attribute_print_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/base.py",
            """
            def f(writer):
                writer.print("not the builtin")
            """,
        )
        assert "SIM08" not in _ids(findings)

    def test_suppression_comment_works(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/base.py",
            """
            def f():
                print("allowed here")  # lint: disable=SIM08
            """,
        )
        assert findings == []


class TestSim09ParallelOnly:
    def test_multiprocessing_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/rogue.py",
            """
            import multiprocessing

            def fan_out(tasks):
                with multiprocessing.Pool() as pool:
                    return pool.map(str, tasks)
            """,
        )
        assert _ids(findings) == ["SIM09"]
        assert "multiprocessing" in findings[0].message

    def test_concurrent_futures_from_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/rogue.py",
            """
            from concurrent.futures import ProcessPoolExecutor
            """,
        )
        assert _ids(findings) == ["SIM09"]

    def test_submodule_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/rogue.py",
            """
            import multiprocessing.pool as mp_pool
            """,
        )
        assert _ids(findings) == ["SIM09"]

    def test_parallel_module_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/parallel.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run_grid(fn, tasks, jobs=1):
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    return [f.result() for f in [pool.submit(fn, t) for t in tasks]]
            """,
        )
        assert "SIM09" not in _ids(findings)

    def test_out_of_package_script_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "scripts/fanout.py",
            """
            import multiprocessing
            """,
        )
        assert "SIM09" not in _ids(findings)

    def test_threading_not_banned(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/telemetry/rogue.py",
            """
            import threading
            """,
        )
        assert "SIM09" not in _ids(findings)


class TestSim15SerializationBoundary:
    def test_pickle_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/rogue.py",
            """
            import pickle

            def save(state, path):
                pickle.dump(state, open(path, "wb"))
            """,
        )
        assert _ids(findings) == ["SIM15"]
        assert "pickle" in findings[0].message

    def test_from_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/ftl/rogue.py",
            """
            from marshal import dumps
            """,
        )
        assert _ids(findings) == ["SIM15"]

    def test_submodule_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/sim/rogue.py",
            """
            import shelve.whatever as sv
            """,
        )
        assert _ids(findings) == ["SIM15"]

    def test_checkpoint_package_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/checkpoint/interop.py",
            """
            import pickle
            """,
        )
        assert "SIM15" not in _ids(findings)

    def test_out_of_package_script_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            "scripts/export.py",
            """
            import pickle
            """,
        )
        assert "SIM15" not in _ids(findings)

    def test_plain_json_not_banned(self, tmp_path):
        findings = _lint(
            tmp_path,
            "repro/analysis/reports.py",
            """
            import json
            """,
        )
        assert "SIM15" not in _ids(findings)
