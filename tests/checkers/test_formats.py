"""Output formats (json/sarif) and run_lint baseline/exit-code wiring."""

from __future__ import annotations

import json
import textwrap

from repro.checkers.baseline import Baseline
from repro.checkers.lint import Finding, run_lint
from repro.checkers.report import render_json, render_sarif


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _finding(message="boom", line=3):
    return Finding(
        "SIM04", "error", "src/repro/flash/x.py", line, 5, message,
        hint="use a tolerance",
    )


DIRTY = """
    def f(x):
        return x == 1.0
"""


class TestJson:
    def test_document_shape(self):
        payload = json.loads(render_json([_finding()], [_finding("old")]))
        assert payload["version"] == 1
        assert payload["tool"] == "repro-lint"
        assert payload["summary"] == {
            "findings": 1, "errors": 1, "warnings": 0, "baselined": 1,
        }
        (finding,) = payload["findings"]
        assert finding["rule_id"] == "SIM04"
        assert finding["line"] == 3
        assert finding["hint"] == "use a tolerance"
        assert payload["baselined"][0]["message"] == "old"


class TestSarif:
    def test_log_shape_and_rule_metadata(self):
        log = json.loads(render_sarif([_finding()], []))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        # the whole catalogue ships as metadata, per-file and project rules
        assert {"SIM01", "SIM10", "SIM11", "SIM12", "SIM13", "SIM14"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "SIM04"
        assert result["level"] == "error"
        assert "hint:" in result["message"]["text"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}
        assert "baselineState" not in result

    def test_baselined_results_marked_unchanged(self):
        log = json.loads(render_sarif([], [_finding()]))
        (result,) = log["runs"][0]["results"]
        assert result["baselineState"] == "unchanged"


class TestRunLint:
    def test_sarif_out_file(self, tmp_path, capsys):
        _write(tmp_path, "repro/flash/x.py", DIRTY)
        out = tmp_path / "lint.sarif"
        code = run_lint(
            [str(tmp_path)], fmt="sarif", out=str(out), no_baseline=True
        )
        assert code == 1
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "SIM04"
        # a human summary still goes to the console
        assert "finding" in capsys.readouterr().out

    def test_baseline_accepts_known_findings(self, tmp_path, capsys):
        _write(tmp_path, "repro/flash/x.py", DIRTY)
        baseline = tmp_path / "base.json"
        assert run_lint(
            [str(tmp_path)], baseline_path=str(baseline),
            write_baseline=True,
        ) == 0
        assert Baseline.load(baseline).fingerprints
        capsys.readouterr()
        # with the baseline in force the same tree gates green
        assert run_lint(
            [str(tmp_path)], baseline_path=str(baseline)
        ) == 0
        assert "baselined" in capsys.readouterr().out

    def test_new_finding_still_fails_with_baseline(self, tmp_path, capsys):
        _write(tmp_path, "repro/flash/x.py", DIRTY)
        baseline = tmp_path / "base.json"
        run_lint([str(tmp_path)], baseline_path=str(baseline),
                 write_baseline=True)
        _write(tmp_path, "repro/flash/y.py", DIRTY)
        capsys.readouterr()
        assert run_lint(
            [str(tmp_path)], baseline_path=str(baseline)
        ) == 1
        assert "y.py" in capsys.readouterr().out

    def test_no_baseline_ignores_file(self, tmp_path, capsys):
        _write(tmp_path, "repro/flash/x.py", DIRTY)
        baseline = tmp_path / "base.json"
        run_lint([str(tmp_path)], baseline_path=str(baseline),
                 write_baseline=True)
        capsys.readouterr()
        assert run_lint(
            [str(tmp_path)], baseline_path=str(baseline), no_baseline=True
        ) == 1

    def test_bad_format_is_usage_error(self, tmp_path, capsys):
        _write(tmp_path, "repro/ok.py", "x = 1\n")
        assert run_lint([str(tmp_path)], fmt="yaml") == 2
        capsys.readouterr()

    def test_json_format_to_stdout(self, tmp_path, capsys):
        _write(tmp_path, "repro/ok.py", "x = 1\n")
        assert run_lint([str(tmp_path)], fmt="json", no_baseline=True) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 0
