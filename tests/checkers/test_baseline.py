"""Baseline file: fingerprints, round-trip, count-budget split."""

from __future__ import annotations

import json

import pytest

from repro.checkers.baseline import (
    Baseline,
    fingerprint,
    normalize_path,
)
from repro.checkers.lint import Finding


def _finding(path="src/repro/ftl/base.py", line=10, message="boom",
             rule_id="SIM14"):
    return Finding(rule_id, "error", path, line, 1, message)


class TestNormalizePath:
    def test_strips_to_last_repro_segment(self):
        assert normalize_path("/home/ci/src/repro/ftl/base.py") == (
            "repro/ftl/base.py"
        )

    def test_no_repro_segment_keeps_path(self):
        assert normalize_path("scripts/tool.py") == "scripts/tool.py"

    def test_machine_portable(self):
        a = normalize_path("/builder/a/src/repro/sim/engine.py")
        b = normalize_path("/laptop/work/src/repro/sim/engine.py")
        assert a == b


class TestFingerprint:
    def test_line_numbers_do_not_matter(self):
        # baselines survive unrelated edits that shift lines
        assert fingerprint(_finding(line=10)) == fingerprint(_finding(line=99))

    def test_message_and_rule_matter(self):
        assert fingerprint(_finding(message="a")) != fingerprint(
            _finding(message="b")
        )
        assert fingerprint(_finding(rule_id="SIM10")) != fingerprint(
            _finding(rule_id="SIM14")
        )


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=20)])
        path = tmp_path / "b.json"
        baseline.dump(path)
        loaded = Baseline.load(path)
        assert loaded.fingerprints == baseline.fingerprints
        # identical findings collapse into one fingerprint with count 2
        assert sum(loaded.fingerprints.values()) == 2

    def test_dump_is_stable_json(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline.from_findings([_finding()]).dump(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert path.read_text().endswith("\n")

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.fingerprints == {}

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"version": 99, "fingerprints": {}}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestSplit:
    def test_known_findings_are_accepted(self):
        baseline = Baseline.from_findings([_finding()])
        new, accepted = baseline.split([_finding(line=42)])
        assert new == []
        assert len(accepted) == 1

    def test_unknown_findings_are_new(self):
        baseline = Baseline.from_findings([_finding()])
        new, accepted = baseline.split([_finding(message="different")])
        assert len(new) == 1 and accepted == []

    def test_count_budget_is_consumed(self):
        # one baselined occurrence does not absolve two
        baseline = Baseline.from_findings([_finding()])
        new, accepted = baseline.split([_finding(), _finding(line=50)])
        assert len(accepted) == 1
        assert len(new) == 1
