"""SIM13: time-unit suffix consistency (_ns/_us/_ms/_s)."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_paths
from repro.checkers.rules.units import TimeUnitConsistencyRule

RULES = [TimeUnitConsistencyRule()]


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _lint(tmp_path):
    return lint_paths([tmp_path], rules=RULES)


class TestMismatches:
    def test_mixed_addition_flagged(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(start_us, t_prog_ms):
                return start_us + t_prog_ms
        """)
        (finding,) = _lint(tmp_path)
        assert finding.rule_id == "SIM13"
        assert "us" in finding.message and "ms" in finding.message

    def test_mixed_comparison_flagged(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(deadline_us, now_ns):
                return now_ns < deadline_us
        """)
        assert [f.rule_id for f in _lint(tmp_path)] == ["SIM13"]

    def test_assignment_unit_mismatch_flagged(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(t_read_us):
                latency_ms = t_read_us
                return latency_ms
        """)
        assert [f.rule_id for f in _lint(tmp_path)] == ["SIM13"]

    def test_keyword_argument_mismatch_flagged(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(self, end_ns):
                self.record(duration_us=end_ns)
        """)
        assert [f.rule_id for f in _lint(tmp_path)] == ["SIM13"]

    def test_function_suffix_vs_return_flagged(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def latency_ms(self, start_us):
                return self.end_us - 0 + start_us
        """)
        findings = _lint(tmp_path)
        assert findings and all(f.rule_id == "SIM13" for f in findings)


class TestClean:
    def test_same_unit_arithmetic(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(start_us, t_prog_us):
                end_us = start_us + t_prog_us
                return end_us
        """)
        assert _lint(tmp_path) == []

    def test_explicit_conversion_resets_unit(self, tmp_path):
        # multiply/divide is how conversions are written; the result is
        # deliberately unit-unknown
        _write(tmp_path, "repro/ssd/x.py", """
            def f(start_us):
                start_ms = start_us / 1000.0
                return start_ms
        """)
        assert _lint(tmp_path) == []

    def test_rates_and_unitless_names_exempt(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(ops_per_s, pages, span_us):
                total = ops_per_s * pages
                return total + span_us
        """)
        assert _lint(tmp_path) == []

    def test_constants_inherit_context(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(start_us):
                end_us = start_us + 50
                return end_us
        """)
        assert _lint(tmp_path) == []

    def test_aggregates_preserve_unanimous_unit(self, tmp_path):
        _write(tmp_path, "repro/ssd/x.py", """
            def f(a_us, b_us):
                peak_us = max(a_us, b_us)
                return peak_us
        """)
        assert _lint(tmp_path) == []
