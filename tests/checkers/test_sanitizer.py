"""Runtime invariant sanitizer: clean variants pass, broken FTLs fail."""

from __future__ import annotations

import pytest

from repro.checkers.sanitizer import (
    FtlSanitizer,
    InvariantViolation,
    default_checked,
    default_interval,
    set_default_checked,
)
from repro.ftl.recovery import PowerLossRecovery
from repro.ftl.secure import SecureFtl
from repro.ssd.device import SSD
from repro.ssd.request import read, trim, write

ALL_VARIANTS = (
    "baseline",
    "secSSD",
    "secSSD_nobLock",
    "erSSD",
    "scrSSD",
    "cryptSSD",
)


def _churn(ssd: SSD, overwrites: int = 3) -> None:
    """Fill the device, then overwrite/trim/read enough to force GC."""
    logical = ssd.logical_pages
    for lpa in range(logical):
        ssd.submit(write(lpa, secure=True))
    for round_ in range(overwrites):
        for lpa in range(0, logical, 2):
            ssd.submit(write(lpa, secure=True))
        for lpa in range(1, logical, 8):
            ssd.submit(trim(lpa))
        for lpa in range(1, logical, 8):
            ssd.submit(write(lpa, secure=(round_ % 2 == 0)))
        for lpa in range(0, logical, 5):
            ssd.submit(read(lpa))


class TestCleanVariants:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_variant_survives_churn_checked(self, single_chip_config, variant):
        ssd = SSD(single_chip_config, variant, checked=True, check_interval=1)
        _churn(ssd)
        sanitizer = ssd.ftl._sanitizer
        assert sanitizer is not None
        summary = sanitizer.summary()
        assert summary["batches"] > 0
        assert summary["full_checks"] == summary["batches"]
        # erSSD sanitizes by erasing: the erase immediately frees the
        # pages, so nothing lingers in the probe set.  Every lock/scrub/
        # key-delete variant must have been probed.
        if variant not in ("baseline", "erSSD"):
            assert summary["probes"] > 0
        if variant == "erSSD":
            assert ssd.ftl.stats.sanitize_erases > 0

    def test_checked_run_reports_identical_stats(self, single_chip_config):
        checked = SSD(single_chip_config, "secSSD", checked=True, check_interval=1)
        plain = SSD(single_chip_config, "secSSD", checked=False)
        _churn(checked, overwrites=1)
        _churn(plain, overwrites=1)
        assert checked.ftl.stats == plain.ftl.stats
        assert checked.elapsed_us == plain.elapsed_us


class TestDefaults:
    def test_conftest_enables_checking_by_default(self, single_chip_config):
        assert default_checked()
        ssd = SSD(single_chip_config, "baseline")
        assert ssd.ftl._sanitizer is not None
        assert ssd.ftl._sanitizer.interval == default_interval()

    def test_explicit_opt_out_wins(self, single_chip_config):
        ssd = SSD(single_chip_config, "baseline", checked=False)
        assert ssd.ftl._sanitizer is None

    def test_set_default_checked_round_trip(self):
        saved_enabled, saved_interval = default_checked(), default_interval()
        try:
            set_default_checked(False)
            assert not default_checked()
            set_default_checked(True, interval=5)
            assert default_checked() and default_interval() == 5
            with pytest.raises(ValueError):
                set_default_checked(True, interval=0)
        finally:
            set_default_checked(saved_enabled, interval=saved_interval)

    def test_bogus_sanitize_scope_rejected(self, single_chip_config):
        class WeirdFtl(SecureFtl):
            name = "weird"
            sanitize_scope = "sometimes"

        with pytest.raises(ValueError, match="sanitize_scope"):
            SSD(single_chip_config, ftl_class=WeirdFtl, checked=True)


class LeakyGcFtl(SecureFtl):
    """Broken on purpose: GC stale copies are never locked."""

    name = "secSSD_leakygc"

    def _finish_victim(self, chip_id, local_block, events):
        self._retire_victim(chip_id, local_block)


class LyingFtl(SecureFtl):
    """Broken on purpose: reports sanitization without issuing pLocks."""

    name = "secSSD_lying"

    def _lock_invalidated(self, events):
        for event in events:
            if event.was_secured:
                self.observer.on_sanitize(event.gppa, "plock")


class SilentLockFtl(SecureFtl):
    """Broken on purpose: locks pages but hides it from the observer."""

    name = "secSSD_silent"

    def _lock_invalidated(self, events):
        for event in events:
            if event.was_secured:
                chip_id, ppn = self.split_gppa(event.gppa)
                self.chips[chip_id].plock(ppn)
                self.timing.plock(chip_id)
                self.stats.plocks += 1


class TestBrokenFtlsRejected:
    def test_gc_that_skips_locking_is_caught(self, single_chip_config):
        ssd = SSD(
            single_chip_config,
            ftl_class=LeakyGcFtl,
            checked=True,
            check_interval=1,
        )
        with pytest.raises(InvariantViolation) as excinfo:
            _churn(ssd)
        assert excinfo.value.invariant == "security"
        assert "unsanitized" in excinfo.value.detail
        assert excinfo.value.trail  # the event trail is attached

    def test_claimed_but_not_performed_lock_is_caught(self, single_chip_config):
        ssd = SSD(
            single_chip_config,
            ftl_class=LyingFtl,
            checked=True,
            check_interval=1,
        )
        with pytest.raises(InvariantViolation) as excinfo:
            _churn(ssd)
        assert excinfo.value.invariant == "unreadable-probe"
        assert "plock" in excinfo.value.detail

    def test_lock_hidden_from_observer_is_caught(self, single_chip_config):
        ssd = SSD(
            single_chip_config,
            ftl_class=SilentLockFtl,
            checked=True,
            check_interval=1,
        )
        with pytest.raises(InvariantViolation) as excinfo:
            _churn(ssd)
        assert excinfo.value.invariant == "security"

    def test_status_mutation_bypassing_observer_is_caught(
        self, single_chip_config
    ):
        ssd = SSD(single_chip_config, "baseline", checked=True, check_interval=1)
        ssd.submit(write(0, secure=False))
        gppa = ssd.ftl.mapped_gppa(0)
        # rot the table behind the observer's back (what SIM01 bans
        # statically; the runtime checker catches it dynamically)
        ssd.ftl.status.set_invalid(gppa)
        with pytest.raises(InvariantViolation) as excinfo:
            ssd.submit(read(0))
        assert excinfo.value.invariant == "status-divergence"


class TestRecoveryResync:
    def test_checked_ftl_survives_power_loss_recovery(self, single_chip_config):
        ssd = SSD(single_chip_config, "secSSD", checked=True, check_interval=1)
        logical = ssd.logical_pages
        for lpa in range(logical):
            ssd.submit(write(lpa, secure=True))
        for lpa in range(0, logical, 3):
            ssd.submit(write(lpa, secure=True))
        recovery = PowerLossRecovery(ssd.ftl)
        recovery.simulate_power_loss()
        report = recovery.recover()
        assert report.live_pages_recovered > 0
        # post-recovery traffic runs under the re-synced shadow state
        for lpa in range(0, logical, 2):
            ssd.submit(write(lpa, secure=True))

    def test_resync_without_sanitizer_is_noop(self, single_chip_config):
        ssd = SSD(single_chip_config, "baseline", checked=False)
        ssd.ftl.resync_checker()  # must not raise


class TestViolationRendering:
    def test_message_carries_invariant_batch_and_trail(self):
        exc = InvariantViolation(
            "security",
            "gppa 7 left unsanitized",
            trail=["#1 program gppa=7", "#2 invalidate gppa=7"],
            batch=2,
        )
        text = str(exc)
        assert "[security]" in text
        assert "batch 2" in text
        assert "#1 program gppa=7" in text
        assert exc.trail == ["#1 program gppa=7", "#2 invalidate gppa=7"]

    def test_direct_attach_exposes_counters(self, single_chip_config):
        ssd = SSD(single_chip_config, "secSSD", checked=False)
        sanitizer = FtlSanitizer(ssd.ftl, interval=2)
        ssd.submit(write(0, secure=True))
        ssd.submit(write(0, secure=True))
        assert sanitizer.batch == 0  # unchecked FTL never calls check_batch
        sanitizer.check_batch()
        sanitizer.check_batch()
        assert sanitizer.full_checks == 1  # interval=2: every other batch
