"""Lint engine mechanics: discovery, suppression, formatting, parsing."""

from __future__ import annotations

import textwrap

import pytest

from repro.checkers.lint import (
    Finding,
    default_rules,
    format_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    make_context,
    rule_catalogue,
    run_lint,
)


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


class TestDiscovery:
    def test_directory_walk_is_sorted_and_skips_pycache(self, tmp_path):
        _write(tmp_path, "pkg/b.py", "x = 1\n")
        _write(tmp_path, "pkg/a.py", "x = 1\n")
        _write(tmp_path, "pkg/__pycache__/c.py", "x = 1\n")
        _write(tmp_path, "pkg/note.txt", "not python\n")
        files = list(iter_python_files([tmp_path / "pkg"]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_single_file_accepted(self, tmp_path):
        path = _write(tmp_path, "one.py", "x = 1\n")
        assert list(iter_python_files([path])) == [path]

    def test_non_python_path_rejected(self, tmp_path):
        path = _write(tmp_path, "one.txt", "x\n")
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([path]))


class TestContext:
    def test_rel_parts_strip_repro_prefix(self, tmp_path):
        path = _write(tmp_path, "src/repro/ftl/base.py", "x = 1\n")
        ctx = make_context(path)
        assert ctx.rel_parts == ("ftl", "base.py")
        assert ctx.filename == "base.py"
        assert ctx.in_package_dir("ftl")
        assert not ctx.in_package_dir("flash")

    def test_file_outside_repro_keeps_parts(self, tmp_path):
        path = _write(tmp_path, "scripts/tool.py", "x = 1\n")
        ctx = make_context(path)
        assert ctx.rel_parts[-1] == "tool.py"
        assert not ctx.in_package_dir("ftl")


class TestSuppression:
    def test_specific_rule_suppressed_on_line(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                return x == 1.0  # lint: disable=SIM04
            """,
        )
        assert lint_file(path) == []

    def test_wildcard_all_suppressed(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                return x == 1.0  # lint: disable=all
            """,
        )
        assert lint_file(path) == []

    def test_other_rule_id_does_not_suppress(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                return x == 1.0  # lint: disable=SIM01
            """,
        )
        assert [f.rule_id for f in lint_file(path)] == ["SIM04"]

    def test_suppression_is_line_scoped(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                a = x == 1.0  # lint: disable=SIM04
                b = x == 2.0
                return a or b
            """,
        )
        findings = lint_file(path)
        assert [f.rule_id for f in findings] == ["SIM04"]
        assert findings[0].line == 4  # the unsuppressed comparison


class TestFileSuppression:
    """`# lint: disable-file=ID` silences a rule for the whole file."""

    def test_file_level_silences_all_occurrences(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            # lint: disable-file=SIM04 -- tolerance table is exact by design
            def f(x):
                a = x == 1.0
                b = x == 2.0
                return a or b
            """,
        )
        assert lint_file(path) == []

    def test_file_level_is_rule_scoped(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            # lint: disable-file=SIM01
            def f(x):
                return x == 1.0
            """,
        )
        assert [f.rule_id for f in lint_file(path)] == ["SIM04"]

    def test_file_level_wildcard(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            # lint: disable-file=all
            def f(x):
                return x == 1.0
            """,
        )
        assert lint_file(path) == []

    def test_file_level_applies_regardless_of_position(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                return x == 1.0

            # lint: disable-file=SIM04 -- declared after the finding
            """,
        )
        assert lint_file(path) == []

    def test_file_level_and_line_level_compose(self, tmp_path):
        """File-level for one rule leaves per-line control of others."""
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            # lint: disable-file=SIM04
            import random

            def f(x):
                a = random.random()  # lint: disable=SIM03
                b = random.random()
                return a == 1.0 or b == 2.0
            """,
        )
        findings = lint_file(path)
        # SIM04 gone file-wide; SIM03 suppressed only on the first call
        assert [f.rule_id for f in findings] == ["SIM03"]
        assert findings[0].line == 7

    def test_line_suppression_does_not_leak_file_wide(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                a = x == 1.0  # lint: disable=SIM04
                b = x == 2.0
                return a or b
            """,
        )
        assert [f.line for f in lint_file(path)] == [4]


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, tmp_path):
        path = _write(tmp_path, "repro/bad.py", "def f(:\n")
        findings = lint_file(path)
        assert len(findings) == 1
        assert findings[0].rule_id == "SIM-PARSE"
        assert findings[0].severity == "error"
        assert "does not parse" in findings[0].message


class TestFormatting:
    def test_clean_report(self):
        assert format_findings([]) == "repro lint: clean (0 findings)"

    def test_report_has_location_and_summary(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/flash/x.py",
            """
            def f(x):
                return x == 1.0
            """,
        )
        findings = lint_paths([path])
        report = format_findings(findings)
        assert f"{path}:3:" in report
        assert "error SIM04" in report
        assert "1 finding(s): 1 error(s)" in report
        assert "hint:" in report
        assert "hint:" not in format_findings(findings, show_hints=False)

    def test_finding_format_without_hint(self):
        finding = Finding("SIM99", "error", "a.py", 3, 7, "boom")
        assert finding.format() == "a.py:3:7: error SIM99: boom"

    def test_findings_sorted_by_location(self, tmp_path):
        _write(tmp_path, "repro/flash/b.py", "x = 1 if y == 2.0 else 0\n")
        _write(tmp_path, "repro/flash/a.py", "x = 1 if y == 2.0 else 0\n")
        findings = lint_paths([tmp_path])
        paths = [f.path for f in findings]
        assert paths == sorted(paths)


class TestRegistry:
    def test_catalogue_lists_every_rule(self):
        catalogue = rule_catalogue()
        for rule in default_rules():
            assert rule.rule_id in catalogue
        for rule_id in ("SIM01", "SIM02", "SIM03", "SIM04", "SIM05"):
            assert rule_id in catalogue

    def test_run_lint_clean_tree_exit_zero(self, tmp_path, capsys):
        _write(tmp_path, "repro/ok.py", "x = 1\n")
        assert run_lint([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_run_lint_dirty_tree_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "repro/flash/x.py", "bad = value == 0.5\n")
        assert run_lint([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM04" in out and "x.py:1" in out

    def test_shipped_package_is_clean_against_baseline(self):
        """The tree has zero findings beyond the committed baseline."""
        from pathlib import Path

        from repro.checkers.baseline import Baseline

        import repro

        package_root = Path(repro.__file__).resolve().parent
        repo_root = package_root.parent.parent
        baseline = Baseline.load(repo_root / ".lint-baseline.json")
        new, accepted = baseline.split(lint_paths([package_root]))
        assert new == [], "non-baselined findings:\n" + "\n".join(
            f.format(show_hint=False) for f in new
        )
        # the baseline must not contain stale entries either: every
        # accepted fingerprint is still produced by the tree
        assert len(accepted) == sum(baseline.fingerprints.values())
