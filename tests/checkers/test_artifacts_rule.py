"""SIM16: run evidence goes through the sanctioned canonical writers."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_file


def _lint(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return lint_file(path)


def _sim16(findings):
    return [f for f in findings if f.rule_id == "SIM16"]


class TestFlagged:
    def test_json_dumps_call_in_analysis(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/analysis/rogue.py",
                """
                import json

                def emit(report, path):
                    path.write_text(json.dumps(report))
                """,
            )
        )
        assert len(findings) == 1
        assert "json.dumps" in findings[0].message

    def test_json_dump_call_in_audit(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/audit/rogue.py",
                """
                import json

                def emit(cert, handle):
                    json.dump(cert, handle)
                """,
            )
        )
        assert len(findings) == 1

    def test_from_import_of_dumps(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/fleet/rogue.py",
                """
                from json import dumps
                """,
            )
        )
        assert len(findings) == 1


class TestSanctioned:
    def test_telemetry_export_is_the_writer(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/telemetry/export.py",
                """
                import json

                def to_jsonl(events):
                    return json.dumps(events, sort_keys=True)
                """,
            )
        )
        assert findings == []

    def test_checkpoint_codec_is_the_writer(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/checkpoint/codec.py",
                """
                import json

                def canonical_dumps(payload):
                    return json.dumps(payload, sort_keys=True) + "\\n"
                """,
            )
        )
        assert findings == []

    def test_reading_json_is_free(self, tmp_path):
        findings = _sim16(
            _lint(
                tmp_path,
                "repro/analysis/reader.py",
                """
                import json

                def load(path):
                    return json.loads(path.read_text())
                """,
            )
        )
        assert findings == []
