"""ProjectContext: module naming, import graph, hierarchy, lockstep scan."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import make_context
from repro.checkers.project import ProjectContext, module_name_of


def _ctx(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return make_context(path)


def _project(tmp_path, files: dict[str, str], tree_scan: bool = True):
    contexts = [_ctx(tmp_path, rel, body) for rel, body in files.items()]
    return ProjectContext(contexts, tree_scan=tree_scan)


class TestModuleNaming:
    def test_package_module(self, tmp_path):
        ctx = _ctx(tmp_path, "src/repro/ftl/base.py", "x = 1\n")
        assert module_name_of(ctx) == "repro.ftl.base"

    def test_package_init(self, tmp_path):
        ctx = _ctx(tmp_path, "src/repro/ftl/__init__.py", "x = 1\n")
        assert module_name_of(ctx) == "repro.ftl"

    def test_top_level_module(self, tmp_path):
        ctx = _ctx(tmp_path, "src/repro/faults.py", "x = 1\n")
        assert module_name_of(ctx) == "repro.faults"

    def test_file_outside_repro(self, tmp_path):
        ctx = _ctx(tmp_path, "scripts/tool.py", "x = 1\n")
        assert module_name_of(ctx) == "tool"


class TestImportGraph:
    def test_plain_and_from_imports(self, tmp_path):
        project = _project(tmp_path, {
            "repro/ssd/device.py": """
                import repro.flash.constants
                from repro.ftl.base import PageMappedFtl
                from repro import telemetry
            """,
        })
        module = project.modules["repro.ssd.device"]
        targets = {e.module for e in module.imports}
        assert targets == {
            "repro.flash.constants",
            "repro.ftl.base",
            "repro.telemetry",
        }
        assert module.top_package == "ssd"
        tops = {e.top_package for e in module.imports}
        assert tops == {"flash", "ftl", "telemetry"}

    def test_type_checking_imports_are_tagged(self, tmp_path):
        project = _project(tmp_path, {
            "repro/ftl/observer.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.sim.engine import QueueingEngine
                from repro.flash.constants import PAGE_SIZE
            """,
        })
        module = project.modules["repro.ftl.observer"]
        by_target = {e.module: e for e in module.imports}
        assert by_target["repro.sim.engine"].type_only
        assert not by_target["repro.flash.constants"].type_only

    def test_relative_imports_ignored(self, tmp_path):
        project = _project(tmp_path, {
            "repro/ftl/secure.py": "from .base import PageMappedFtl\n",
        })
        assert project.modules["repro.ftl.secure"].imports == []


class TestHierarchy:
    FILES = {
        "repro/ftl/base.py": """
            class PageMappedFtl:
                def _invalidate(self, gppa):
                    self.observer.on_invalidate(gppa, 0, "host")
        """,
        "repro/ftl/secure.py": """
            class SecureFtl(PageMappedFtl):
                def extra(self):
                    pass
        """,
        "repro/ftl/scrub.py": """
            class ScrubFtl(SecureFtl):
                def _invalidate(self, gppa):
                    pass
        """,
        "repro/sim/engine.py": """
            class QueueingEngine:
                pass
        """,
    }

    def test_transitive_subclasses(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        names = {c.name for c in project.subclasses_of("PageMappedFtl")}
        assert names == {"PageMappedFtl", "SecureFtl", "ScrubFtl"}

    def test_resolved_methods_prefer_derived(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        scrub = project.classes_named("ScrubFtl")[0]
        table = project.resolved_methods(scrub)
        assert set(table) == {"_invalidate", "extra"}
        # the override wins over the inherited definition
        assert table["_invalidate"] is scrub.methods["_invalidate"]


class TestLockstepScan:
    def test_region_with_skip(self, tmp_path):
        project = _project(tmp_path, {
            "repro/a.py": """
                def f(self):
                    # lockstep: begin grp
                    x = 1
                    # lockstep: skip-begin -- site-specific capture
                    y = 2
                    # lockstep: skip-end
                    return x
                    # lockstep: end grp
            """,
        })
        assert project.lockstep_errors == []
        (site,) = project.lockstep_sites["grp"]
        assert site.begin_line < site.end_line
        assert len(site.skips) == 1

    def test_marker_text_in_docstrings_is_ignored(self, tmp_path):
        project = _project(tmp_path, {
            "repro/a.py": '''
                """Docs show `# lockstep: begin example` without effect.

                KEEP IN LOCKSTEP appears here only as prose-about-prose.
                """
                x = 1
            ''',
        })
        assert project.lockstep_sites == {}
        assert project.lockstep_errors == []
        assert project.modules["repro.a"].lockstep_prose_line is None

    def test_unclosed_region_is_an_error(self, tmp_path):
        project = _project(tmp_path, {
            "repro/a.py": """
                # lockstep: begin grp
                x = 1
            """,
        })
        assert any("never closed" in msg
                   for _, _, msg in project.lockstep_errors)

    def test_skip_requires_justification(self, tmp_path):
        project = _project(tmp_path, {
            "repro/a.py": """
                # lockstep: begin grp
                # lockstep: skip-begin
                x = 1
                # lockstep: skip-end
                # lockstep: end grp
            """,
        })
        assert any("justification" in msg
                   for _, _, msg in project.lockstep_errors)
