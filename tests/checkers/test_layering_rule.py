"""SIM14: import-layering contract (flash -> ... -> analysis, no upward)."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_paths
from repro.checkers.rules.layering import ImportLayeringRule

RULES = [ImportLayeringRule()]


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _lint(tmp_path):
    return lint_paths([tmp_path], rules=RULES)


class TestLayering:
    def test_downward_imports_are_clean(self, tmp_path):
        _write(tmp_path, "repro/ssd/device.py", """
            from repro.flash.constants import PAGE_SIZE
            from repro.ftl.base import PageMappedFtl
        """)
        _write(tmp_path, "repro/sim/runner.py", """
            from repro.ssd.device import Ssd
        """)
        _write(tmp_path, "repro/analysis/tail.py", """
            from repro.sim.runner import run
            from repro.telemetry import Telemetry
        """)
        assert _lint(tmp_path) == []

    def test_upward_ftl_to_sim_import_is_flagged(self, tmp_path):
        # the acceptance-criteria fixture: ftl reaching up into sim
        _write(tmp_path, "repro/ftl/base.py", """
            from repro.sim.engine import QueueingEngine
        """)
        (finding,) = _lint(tmp_path)
        assert finding.rule_id == "SIM14"
        assert finding.severity == "error"
        assert finding.line == 2
        assert "'ftl' (layer 1)" in finding.message
        assert "'sim' (layer 3)" in finding.message

    def test_layering_cycle_is_caught_via_upward_edge(self, tmp_path):
        # ftl -> sim -> ftl: the downward half is legal, the upward half
        # is the finding -- a total order makes every cycle visible
        _write(tmp_path, "repro/ftl/secure.py", """
            from repro.sim.ops import RecordingTiming
        """)
        _write(tmp_path, "repro/sim/ops.py", """
            from repro.ftl.secure import SecureFtl
        """)
        findings = _lint(tmp_path)
        assert [f.rule_id for f in findings] == ["SIM14"]
        assert findings[0].path.endswith("secure.py")

    def test_type_checking_imports_exempt(self, tmp_path):
        _write(tmp_path, "repro/ftl/observer.py", """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.telemetry import Telemetry
        """)
        assert _lint(tmp_path) == []

    def test_same_package_imports_exempt(self, tmp_path):
        _write(tmp_path, "repro/sim/engine.py", """
            from repro.sim.heap import EventHeap
        """)
        assert _lint(tmp_path) == []

    def test_unlayered_packages_exempt(self, tmp_path):
        # checkers/cli/util are not part of the runtime layering contract
        _write(tmp_path, "repro/checkers/x.py", """
            from repro.analysis.tail import percentile
        """)
        _write(tmp_path, "repro/ftl/base.py", """
            from repro.util import clamp
        """)
        assert _lint(tmp_path) == []

    def test_inline_suppression_applies(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", """
            from repro.telemetry import Telemetry  # lint: disable=SIM14 -- seam
        """)
        assert _lint(tmp_path) == []
