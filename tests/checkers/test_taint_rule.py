"""SIM10: determinism taint flowing into results, telemetry, artifacts."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_paths
from repro.checkers.rules.taint import DeterminismTaintRule

RULES = [DeterminismTaintRule()]


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _lint(tmp_path):
    return lint_paths([tmp_path], rules=RULES)


class TestSinks:
    def test_wall_clock_into_run_result(self, tmp_path):
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg):
                started = time.time()
                return RunResult(config=cfg, wall_s=started)
        """)
        (finding,) = _lint(tmp_path)
        assert finding.rule_id == "SIM10"
        assert "wall-clock" in finding.message
        assert "RunResult" in finding.message

    def test_entropy_into_json_artifact(self, tmp_path):
        _write(tmp_path, "repro/analysis/report.py", """
            import json
            import os

            def dump(path):
                token = os.urandom(8).hex()
                with open(path, "w") as fh:
                    json.dump({"token": token}, fh)
        """)
        (finding,) = _lint(tmp_path)
        assert "entropy" in finding.message
        assert "json.dump" in finding.message

    def test_process_identity_into_bus_emit(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", """
            import os

            def emit(self):
                pid = os.getpid()
                self.bus.instant("gc-start", pid=pid)
        """)
        (finding,) = _lint(tmp_path)
        assert "process-identity" in finding.message

    def test_set_iteration_order_into_dumps(self, tmp_path):
        _write(tmp_path, "repro/analysis/x.py", """
            import json

            def bad(blocks):
                victims = set(blocks)
                order = [b for b in victims]
                return json.dumps(order)
        """)
        (finding,) = _lint(tmp_path)
        assert "set-order" in finding.message


class TestSanitizers:
    def test_sorted_set_is_clean(self, tmp_path):
        _write(tmp_path, "repro/analysis/x.py", """
            import json

            def good(blocks):
                victims = set(blocks)
                return json.dumps(sorted(victims))
        """)
        assert _lint(tmp_path) == []

    def test_aggregation_is_clean(self, tmp_path):
        _write(tmp_path, "repro/analysis/x.py", """
            import json

            def good(blocks):
                victims = set(blocks)
                return json.dumps({"n": len(victims), "sum": sum(victims)})
        """)
        assert _lint(tmp_path) == []

    def test_monotonic_timing_not_in_sink_is_clean(self, tmp_path):
        # measuring wall time is fine as long as it stays out of sinks
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg):
                t0 = time.perf_counter()
                result = RunResult(config=cfg)
                print(time.perf_counter() - t0)
                return result
        """)
        assert _lint(tmp_path) == []


class TestPropagation:
    def test_taint_through_arithmetic_and_fstring(self, tmp_path):
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg):
                elapsed = time.perf_counter() - cfg.t0
                label = f"run-{elapsed:.1f}"
                return RunResult(config=cfg, label=label)
        """)
        (finding,) = _lint(tmp_path)
        assert "wall-clock" in finding.message

    def test_function_alias_is_tracked(self, tmp_path):
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg, timer=None):
                clock = timer if timer is not None else time.perf_counter
                return RunResult(config=cfg, t=clock())
        """)
        (finding,) = _lint(tmp_path)
        assert "wall-clock" in finding.message

    def test_container_mutation_taints_receiver(self, tmp_path):
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg):
                rows = []
                rows.append(time.time_ns())
                return RunResult(config=cfg, rows=rows)
        """)
        (finding,) = _lint(tmp_path)
        assert "wall-clock" in finding.message

    def test_inline_suppression(self, tmp_path):
        _write(tmp_path, "repro/sim/runner.py", """
            import time

            def run(cfg):
                t = time.time()
                return RunResult(config=cfg, t=t)  # lint: disable=SIM10
        """)
        assert _lint(tmp_path) == []
