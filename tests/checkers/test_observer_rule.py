"""SIM12: FTL status/L2P mutations must notify the observer seam."""

from __future__ import annotations

import textwrap

from repro.checkers.lint import lint_paths
from repro.checkers.rules.observer_complete import ObserverCompletenessRule

RULES = [ObserverCompletenessRule()]


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _lint(tmp_path):
    return lint_paths([tmp_path], rules=RULES)


BASE = """
    class PageMappedFtl:
        def _invalidate(self, gppa):
            self.status.set_invalid(gppa)
            self.l2p.unmap(gppa)
            self.observer.on_invalidate(gppa)
"""


class TestViolations:
    def test_silent_status_mutation_flagged(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", BASE)
        _write(tmp_path, "repro/ftl/secure.py", """
            class SecureFtl(PageMappedFtl):
                def fast_erase(self, block):
                    self.status.set_erased_block(block)
        """)
        (finding,) = _lint(tmp_path)
        assert finding.rule_id == "SIM12"
        assert "SecureFtl.fast_erase" in finding.message
        assert "on_erase" in finding.message

    def test_wrong_event_does_not_satisfy(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", BASE)
        _write(tmp_path, "repro/ftl/secure.py", """
            class SecureFtl(PageMappedFtl):
                def write(self, lpn, gppa):
                    self.l2p.map(lpn, gppa)
                    self.observer.on_erase(gppa)
        """)
        (finding,) = _lint(tmp_path)
        assert "l2p.map" in finding.message

    def test_silent_mutation_in_base_class_itself(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", """
            class PageMappedFtl:
                def rewire(self, lpn, gppa):
                    self.l2p.map(lpn, gppa)
        """)
        (finding,) = _lint(tmp_path)
        assert "PageMappedFtl.rewire" in finding.message


class TestSatisfied:
    def test_direct_notification_ok(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", """
            class PageMappedFtl:
                def program(self, lpn, gppa):
                    self.status.set_written(gppa)
                    self.l2p.map(lpn, gppa)
                    self.observer.on_program(lpn, gppa)
        """)
        assert _lint(tmp_path) == []

    def test_transitive_helper_notification_ok(self, tmp_path):
        # the mutator delegates the event to a self-helper
        _write(tmp_path, "repro/ftl/base.py", BASE)
        _write(tmp_path, "repro/ftl/secure.py", """
            class SecureFtl(PageMappedFtl):
                def trim(self, gppa):
                    self.l2p.unmap(gppa)
                    self._note(gppa)

                def _note(self, gppa):
                    self.observer.on_invalidate(gppa)
        """)
        assert _lint(tmp_path) == []

    def test_inherited_helper_notification_ok(self, tmp_path):
        # the helper carrying the event lives on the base class
        _write(tmp_path, "repro/ftl/base.py", BASE)
        _write(tmp_path, "repro/ftl/secure.py", """
            class SecureFtl(PageMappedFtl):
                def trim(self, gppa):
                    self.status.set_invalid(gppa)
                    self._invalidate(gppa)
        """)
        assert _lint(tmp_path) == []

    def test_notify_optional_string_form_ok(self, tmp_path):
        _write(tmp_path, "repro/ftl/base.py", """
            class PageMappedFtl:
                def program(self, lpn, gppa):
                    self.status.set_written(gppa)
                    notify_optional(self.observer, "on_program", lpn, gppa)
        """)
        assert _lint(tmp_path) == []

    def test_non_subclass_is_exempt(self, tmp_path):
        # recovery/audit code rebuilds mapping state without an observer
        _write(tmp_path, "repro/ftl/base.py", BASE)
        _write(tmp_path, "repro/ftl/recovery.py", """
            class PowerLossRecovery:
                def rebuild(self, lpn, gppa):
                    self.l2p.map(lpn, gppa)
                    self.status.set_written(gppa)
        """)
        assert _lint(tmp_path) == []
