"""SIM11: lockstep-region equivalence, markers, and the normalizer."""

from __future__ import annotations

import ast
import textwrap

from repro.checkers.astnorm import normalize_region
from repro.checkers.lint import lint_file, lint_paths
from repro.checkers.rules.lockstep import LockstepEquivalenceRule

RULES = [LockstepEquivalenceRule()]


def _write(tmp_path, relpath: str, body: str):
    path = tmp_path.joinpath(*relpath.split("/"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _lint(tmp_path):
    return lint_paths([tmp_path], rules=RULES)


def _norm(body: str) -> str:
    return normalize_region(ast.parse(textwrap.dedent(body)).body)


CANONICAL = """
    def read(self, ch, start):
        # lockstep: begin tm-read
        end = start + self.t_read_us
        self.channel_busy[ch] = end
        self.reads += 1
        return end
        # lockstep: end tm-read
"""

# same semantics, written the way the inlined hot path writes it:
# attribute cached in a local, different intermediate names
EQUIVALENT = """
    def read(self, ch, start):
        # lockstep: begin tm-read
        busy = self.channel_busy
        t_read = self.t_read_us
        finish = start + t_read
        busy[ch] = finish
        self.reads += 1
        return finish
        # lockstep: end tm-read
"""

DRIFTED = """
    def read(self, ch, start):
        # lockstep: begin tm-read
        end = start + self.t_read_us
        self.channel_busy[ch] = end
        self.reads += 2
        return end
        # lockstep: end tm-read
"""


class TestEquivalence:
    def test_equivalent_pair_is_clean(self, tmp_path):
        _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        _write(tmp_path, "repro/sim/ops.py", EQUIVALENT)
        assert _lint(tmp_path) == []

    def test_mutated_pair_is_caught(self, tmp_path):
        # the acceptance-criteria fixture: one copy drifted
        _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        _write(tmp_path, "repro/sim/ops.py", DRIFTED)
        (finding,) = _lint(tmp_path)
        assert finding.rule_id == "SIM11"
        assert "drifted" in finding.message
        # sites process in sorted path order, so the reference is ops.py
        # and the finding lands on timing.py, pointing at its sibling
        assert finding.path.endswith("timing.py")
        assert "ops.py" in finding.message

    def test_skip_region_carves_out_site_specific_lines(self, tmp_path):
        _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        _write(tmp_path, "repro/sim/ops.py", """
            def read(self, ch, start):
                # lockstep: begin tm-read
                end = start + self.t_read_us
                self.channel_busy[ch] = end
                self.reads += 1
                # lockstep: skip-begin -- op capture is site-specific
                self.ops.append(("read", ch, start, end))
                # lockstep: skip-end
                return end
                # lockstep: end tm-read
        """)
        assert _lint(tmp_path) == []

    def test_unskipped_extra_statement_is_drift(self, tmp_path):
        _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        _write(tmp_path, "repro/sim/ops.py", """
            def read(self, ch, start):
                # lockstep: begin tm-read
                end = start + self.t_read_us
                self.channel_busy[ch] = end
                self.reads += 1
                self.ops.append(("read", ch, start, end))
                return end
                # lockstep: end tm-read
        """)
        assert [f.rule_id for f in _lint(tmp_path)] == ["SIM11"]


class TestMarkerStructure:
    def test_single_site_flagged_on_tree_scan(self, tmp_path):
        _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        (finding,) = _lint(tmp_path)
        assert "only one site" in finding.message

    def test_single_site_not_flagged_on_lone_file(self, tmp_path):
        # linting one file cannot see the sibling; stay quiet
        path = _write(tmp_path, "repro/ssd/timing.py", CANONICAL)
        assert lint_file(path, rules=RULES) == []

    def test_end_without_begin(self, tmp_path):
        _write(tmp_path, "repro/a.py", """
            x = 1
            # lockstep: end grp
        """)
        (finding,) = _lint(tmp_path)
        assert "without" in finding.message

    def test_empty_region_flagged(self, tmp_path):
        _write(tmp_path, "repro/a.py", """
            # lockstep: begin grp
            # lockstep: end grp
        """)
        _write(tmp_path, "repro/b.py", """
            # lockstep: begin grp
            # lockstep: end grp
        """)
        findings = _lint(tmp_path)
        assert findings and all(
            "no statements" in f.message for f in findings
        )

    def test_prose_without_region_flagged(self, tmp_path):
        _write(tmp_path, "repro/a.py", """
            # KEEP IN LOCKSTEP with the copy in ops.py
            x = 1
        """)
        (finding,) = _lint(tmp_path)
        assert "machine-checkable" in finding.message

    def test_prose_with_region_in_same_file_ok(self, tmp_path):
        _write(tmp_path, "repro/ssd/timing.py", """
            # KEEP IN LOCKSTEP with the copy in ops.py
        """ + CANONICAL)
        _write(tmp_path, "repro/sim/ops.py", EQUIVALENT)
        assert _lint(tmp_path) == []


class TestNormalizer:
    def test_alias_caching_normalizes_away(self):
        a = _norm("""
            end = start + self.t_read_us
            self.busy[ch] = end
            return end
        """)
        b = _norm("""
            t = self.t_read_us
            fin = start + t
            self.busy[ch] = fin
            return fin
        """)
        assert a == b

    def test_subscript_store_does_not_invalidate_alias(self):
        # busy[ch] = ... mutates an element, not the self.busy binding
        a = _norm("""
            busy = self.busy
            busy[ch] = end
        """)
        b = _norm("""
            self.busy[ch] = end
        """)
        assert a == b

    def test_attribute_store_blocks_propagation(self):
        # storing self.token means a cached read of server.token is NOT
        # interchangeable with re-reading it afterwards
        a = _norm("""
            t = server.token
            self.token = t + 1
            use(t)
        """)
        b = _norm("""
            self.token = server.token + 1
            use(server.token)
        """)
        assert a != b

    def test_call_results_never_propagate(self):
        a = _norm("""
            v = roll()
            use(v, v)
        """)
        b = _norm("""
            use(roll(), roll())
        """)
        assert a != b

    def test_free_names_are_not_renamed(self):
        a = _norm("self.total += amount\n")
        b = _norm("self.total += delta\n")
        assert a != b

    def test_semantic_change_survives_normalization(self):
        a = _norm("end = start + self.t_us\nreturn end\n")
        b = _norm("end = start - self.t_us\nreturn end\n")
        assert a != b
