"""Exporters: JSONL byte-stability (golden file) and Chrome trace schema."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.telemetry.events import TraceBus, TraceEvent
from repro.telemetry.export import (
    chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

GOLDEN = Path(__file__).with_name("golden_events.jsonl")


def seeded_events(seed: int = 7, n: int = 24) -> list[TraceEvent]:
    """A deterministic synthetic event stream (fixed seed -> fixed bytes).

    Mirrors the taxonomy of a real run: FTL page instants, nested GC /
    lock-batch spans, engine service events -- regenerate the golden
    file with ``python -m tests.telemetry.test_export`` after an
    intentional format change.
    """
    rng = random.Random(seed)
    now = [0.0]
    bus = TraceBus(clock=lambda: now[0])
    for i in range(n):
        now[0] = round(now[0] + rng.uniform(1.0, 250.0), 3)
        roll = rng.random()
        if roll < 0.4:
            bus.instant(
                "ftl.page", "program", args={"gppa": rng.randrange(4096), "i": i}
            )
        elif roll < 0.7:
            bus.complete(
                "sim.service",
                "read",
                ts_us=now[0],
                dur_us=round(rng.uniform(10.0, 120.0), 3),
                tid=f"chip{rng.randrange(4)}",
                args={"stage": "cell"},
            )
        else:
            bus.complete(
                "ftl.gc",
                "gc",
                ts_us=now[0],
                dur_us=round(rng.uniform(100.0, 4000.0), 3),
                tid="ftl",
                args={"depth": 0, "block": rng.randrange(64)},
            )
    return bus.events


class TestJsonl:
    def test_golden_file_bytes(self):
        assert GOLDEN.exists(), "golden file missing; regenerate it"
        assert to_jsonl(seeded_events()) == GOLDEN.read_text(encoding="utf-8")

    def test_same_seed_same_bytes(self):
        assert to_jsonl(seeded_events(3)) == to_jsonl(seeded_events(3))
        assert to_jsonl(seeded_events(3)) != to_jsonl(seeded_events(4))

    def test_empty_stream_is_empty_string(self):
        assert to_jsonl([]) == ""

    def test_one_compact_object_per_line(self):
        lines = to_jsonl(seeded_events(n=5)).splitlines()
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert " " not in line.split('"args"')[0]  # compact separators
            assert list(record) == sorted(record)  # sorted keys

    def test_write_jsonl_round_trip(self, tmp_path):
        events = seeded_events(n=4)
        target = write_jsonl(tmp_path / "t.jsonl", events)
        assert target.read_text(encoding="utf-8") == to_jsonl(events)


class TestChromeTrace:
    def test_processes_get_distinct_pids_and_metadata(self):
        payload = chrome_trace(
            {"secSSD": seeded_events(n=3), "erSSD": seeded_events(n=3)}
        )
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "process_name"
        }
        assert names == {(1, "secSSD"), (2, "erSSD")}
        assert {e["pid"] for e in events} == {1, 2}

    def test_thread_names_mapped_to_integer_tids(self):
        payload = chrome_trace({"run": seeded_events(n=12)})
        events = payload["traceEvents"]
        threads = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # sorted name -> tid assignment, all events use mapped ints
        assert list(threads.values()) == sorted(threads.values())
        for e in events:
            assert isinstance(e["tid"], int)

    def test_instants_thread_scoped_and_completes_have_dur(self):
        payload = chrome_trace({"run": seeded_events(n=12)})
        for e in payload["traceEvents"]:
            if e["ph"] == "i":
                assert e["s"] == "t"
            elif e["ph"] == "X":
                assert e["dur"] >= 0

    def test_emitted_payload_validates(self):
        payload = chrome_trace({"run": seeded_events()})
        assert validate_chrome_trace(payload) == []

    def test_write_refuses_nothing_valid_and_is_loadable(self, tmp_path):
        target = write_chrome_trace(tmp_path / "trace.json", {"r": seeded_events()})
        loaded = json.loads(target.read_text(encoding="utf-8"))
        assert validate_chrome_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"


class TestValidator:
    def test_rejects_non_object_payloads(self):
        assert validate_chrome_trace([]) == ["payload is not a JSON object"]
        assert validate_chrome_trace({"x": 1}) == [
            "missing or non-array 'traceEvents'"
        ]

    @pytest.mark.parametrize(
        "event, fragment",
        [
            ({"ph": "Z", "pid": 1, "tid": 1, "name": "e"}, "bad or missing ph"),
            (
                {"ph": "i", "pid": "1", "tid": 1, "name": "e", "ts": 0.0,
                 "cat": "c"},
                "integer 'pid'",
            ),
            (
                {"ph": "i", "pid": 1, "tid": 1, "ts": 0.0, "cat": "c"},
                "string 'name'",
            ),
            (
                {"ph": "i", "pid": 1, "tid": 1, "name": "e", "cat": "c"},
                "numeric 'ts'",
            ),
            (
                {"ph": "i", "pid": 1, "tid": 1, "name": "e", "ts": 0.0},
                "string 'cat'",
            ),
            (
                {"ph": "X", "pid": 1, "tid": 1, "name": "e", "ts": 0.0,
                 "cat": "c", "dur": -1.0},
                "'dur' >= 0",
            ),
        ],
    )
    def test_flags_malformed_events(self, event, fragment):
        errors = validate_chrome_trace({"traceEvents": [event]})
        assert len(errors) == 1 and fragment in errors[0]

    def test_metadata_events_exempt_from_ts_and_cat(self):
        event = {"ph": "M", "pid": 1, "tid": 0, "name": "process_name"}
        assert validate_chrome_trace({"traceEvents": [event]}) == []


if __name__ == "__main__":  # golden-file regeneration entry point
    GOLDEN.write_text(to_jsonl(seeded_events()), encoding="utf-8")
