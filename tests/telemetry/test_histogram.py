"""The shared percentile math and the fixed-bucket histogram."""

from __future__ import annotations

import pytest

from repro.telemetry.histogram import (
    DEFAULT_BOUNDS_US,
    PERCENTILES,
    FixedBucketHistogram,
    percentile,
    summarize,
)


class TestNearestRankPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_sample_every_q(self):
        for q in (0.0, 50.0, 99.9, 100.0):
            assert percentile([42.0], q) == 42.0

    def test_nearest_rank_returns_observed_sample(self):
        data = sorted(float(v) for v in range(1, 101))
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 100.0
        # nearest rank: an actual sample, never an interpolated value
        assert percentile(data, 50.0) in data
        assert percentile(data, 99.0) in data

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_matches_sim_metrics_reexport(self):
        # satellite contract: one implementation serves every consumer
        from repro.sim.metrics import percentile as sim_percentile

        assert sim_percentile is percentile

    def test_worklog_uses_shared_implementation(self):
        from repro.ssd.request import RequestOp
        from repro.ssd.worklog import WorkLog

        log = WorkLog()
        data = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in data:
            log.record(RequestOp.READ, v)
        assert log.percentile(50) == percentile(sorted(data), 50)
        assert log.percentile(100) == 9.0


class TestSummarize:
    def test_keys_follow_percentile_list(self):
        out = summarize([1.0, 2.0, 3.0])
        for label, _ in PERCENTILES:
            assert label in out
        assert out["count"] == 3.0
        assert out["mean_us"] == 2.0
        assert out["max_us"] == 3.0

    def test_empty(self):
        out = summarize([])
        assert out["count"] == 0.0
        assert out["mean_us"] == 0.0
        assert out["max_us"] == 0.0


class TestFixedBucketHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=(10.0, 10.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=(20.0, 10.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=())

    def test_negative_sample_raises(self):
        hist = FixedBucketHistogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)

    def test_exact_count_sum_min_max(self):
        hist = FixedBucketHistogram(bounds=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 555.0
        assert hist.min == 5.0
        assert hist.max == 500.0
        assert hist.mean == 185.0

    def test_percentile_is_bucket_upper_bound(self):
        hist = FixedBucketHistogram(bounds=(10.0, 100.0, 1000.0))
        for v in (3.0, 4.0, 40.0, 70.0):
            hist.observe(v)
        # ranks 0..3: samples 3,4 -> bucket <=10; 40,70 -> bucket <=100
        assert hist.percentile(0.0) == 10.0
        assert hist.percentile(100.0) == 100.0

    def test_overflow_bucket_reports_exact_max(self):
        hist = FixedBucketHistogram(bounds=(10.0,))
        hist.observe(123456.0)
        assert hist.percentile(99.0) == 123456.0

    def test_empty_percentile_zero(self):
        assert FixedBucketHistogram().percentile(50.0) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram().percentile(101.0)

    def test_snapshot_shape(self):
        hist = FixedBucketHistogram()
        hist.observe(80.0)
        snap = hist.snapshot()
        assert snap["count"] == 1.0
        assert snap["min_us"] == 80.0
        assert snap["max_us"] == 80.0
        for label, _ in PERCENTILES:
            assert label in snap

    def test_default_bounds_cover_flash_latencies(self):
        # a read (~80us) and an erase train (~3.5ms) land in real buckets
        hist = FixedBucketHistogram(bounds=DEFAULT_BOUNDS_US)
        hist.observe(80.0)
        hist.observe(3500.0)
        assert hist.percentile(0.0) == 100.0
        assert hist.percentile(100.0) == 5000.0
