"""The shared percentile math and the fixed-bucket histogram."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.histogram import (
    DEFAULT_BOUNDS_US,
    PERCENTILES,
    FixedBucketHistogram,
    percentile,
    summarize,
)


class TestNearestRankPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_sample_every_q(self):
        for q in (0.0, 50.0, 99.9, 100.0):
            assert percentile([42.0], q) == 42.0

    def test_nearest_rank_returns_observed_sample(self):
        data = sorted(float(v) for v in range(1, 101))
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 100.0
        # nearest rank: an actual sample, never an interpolated value
        assert percentile(data, 50.0) in data
        assert percentile(data, 99.0) in data

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_matches_sim_metrics_reexport(self):
        # satellite contract: one implementation serves every consumer
        from repro.sim.metrics import percentile as sim_percentile

        assert sim_percentile is percentile

    def test_canonical_ceil_rank(self):
        # the bugfixed rule: rank = ceil(q/100 * N) - 1, clamped.  The
        # old round()-based rank gave p50([1,2,3,4]) == 3 (the upper
        # neighbor) but p50([1..6]) == 3 (the lower) -- non-canonical.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 50.0) == 3.0
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_property_returns_observed_sample(self, data, q):
        assert percentile(sorted(data), q) in data

    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        q1=st.floats(min_value=0.0, max_value=100.0),
        q2=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_property_monotonic_in_q(self, data, q1, q2):
        ordered = sorted(data)
        lo, hi = min(q1, q2), max(q1, q2)
        assert percentile(ordered, lo) <= percentile(ordered, hi)

    def test_worklog_uses_shared_implementation(self):
        from repro.ssd.request import RequestOp
        from repro.ssd.worklog import WorkLog

        log = WorkLog()
        data = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in data:
            log.record(RequestOp.READ, v)
        assert log.percentile(50) == percentile(sorted(data), 50)
        assert log.percentile(100) == 9.0


class TestSummarize:
    def test_keys_follow_percentile_list(self):
        out = summarize([1.0, 2.0, 3.0])
        for label, _ in PERCENTILES:
            assert label in out
        assert out["count"] == 3.0
        assert out["mean_us"] == 2.0
        assert out["max_us"] == 3.0

    def test_empty(self):
        out = summarize([])
        assert out["count"] == 0.0
        assert out["mean_us"] == 0.0
        assert out["min_us"] == 0.0
        assert out["max_us"] == 0.0

    def test_min_is_reported(self):
        out = summarize([9.0, 2.0, 5.0])
        assert out["min_us"] == 2.0

    def test_empty_semantics_agree_with_snapshot(self):
        # the count field is the only way to tell "no samples" from a
        # real 0 us observation; both summary shapes agree on that
        empty_summary = summarize([])
        empty_snapshot = FixedBucketHistogram().snapshot()
        assert set(empty_summary) == set(empty_snapshot)
        assert empty_summary == empty_snapshot
        assert empty_summary["count"] == 0.0

    def test_real_zero_min_differs_from_empty_only_by_count(self):
        hist = FixedBucketHistogram()
        hist.observe(0.0)
        snap = hist.snapshot()
        assert snap["min_us"] == 0.0  # same value as empty...
        assert snap["count"] == 1.0   # ...distinguished by the count


class TestFixedBucketHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=(10.0, 10.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=(20.0, 10.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=())

    def test_negative_sample_raises(self):
        hist = FixedBucketHistogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)

    def test_exact_count_sum_min_max(self):
        hist = FixedBucketHistogram(bounds=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 555.0
        assert hist.min == 5.0
        assert hist.max == 500.0
        assert hist.mean == 185.0

    def test_percentile_is_bucket_upper_bound(self):
        hist = FixedBucketHistogram(bounds=(10.0, 100.0, 1000.0))
        for v in (3.0, 4.0, 40.0, 70.0):
            hist.observe(v)
        # ranks 0..3: samples 3,4 -> bucket <=10; 40,70 -> bucket <=100
        assert hist.percentile(0.0) == 10.0
        # the top bucket's 100.0 bound clamps to the exact observed max
        assert hist.percentile(100.0) == 70.0

    def test_single_sample_clamps_to_exact_max(self):
        # the bugfixed contradiction: one 5.0 us sample used to snapshot
        # p50_us = 10.0 (its bucket bound) > max_us = 5.0
        hist = FixedBucketHistogram(bounds=(10.0, 100.0))
        hist.observe(5.0)
        snap = hist.snapshot()
        assert snap["max_us"] == 5.0
        for label, _ in PERCENTILES:
            assert snap[label] == 5.0

    def test_bound_straddling_clamp_only_affects_top_bucket(self):
        # max (15.0) sits in the second bucket: percentiles answered
        # from the first bucket keep its bound, the top one clamps
        hist = FixedBucketHistogram(bounds=(10.0, 100.0))
        for v in (2.0, 3.0, 4.0, 15.0):
            hist.observe(v)
        assert hist.percentile(50.0) == 10.0   # rank 1 -> bucket <=10
        assert hist.percentile(100.0) == 15.0  # rank 3 -> min(100, max)

    def test_estimate_never_exceeds_observed_max(self):
        hist = FixedBucketHistogram(bounds=(10.0, 100.0, 1000.0))
        for v in (1.0, 9.0, 11.0, 99.0, 101.0, 999.0):
            hist.observe(v)
        for q in (0.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0):
            assert hist.percentile(q) <= hist.max

    def test_overflow_bucket_reports_exact_max(self):
        hist = FixedBucketHistogram(bounds=(10.0,))
        hist.observe(123456.0)
        assert hist.percentile(99.0) == 123456.0

    def test_empty_percentile_zero(self):
        assert FixedBucketHistogram().percentile(50.0) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram().percentile(101.0)

    def test_snapshot_shape(self):
        hist = FixedBucketHistogram()
        hist.observe(80.0)
        snap = hist.snapshot()
        assert snap["count"] == 1.0
        assert snap["min_us"] == 80.0
        assert snap["max_us"] == 80.0
        for label, _ in PERCENTILES:
            assert label in snap

    def test_default_bounds_cover_flash_latencies(self):
        # a read (~80us) and an erase train (~3.5ms) land in real buckets
        hist = FixedBucketHistogram(bounds=DEFAULT_BOUNDS_US)
        hist.observe(80.0)
        hist.observe(3500.0)
        assert hist.percentile(0.0) == 100.0
        assert hist.percentile(100.0) == 3500.0  # 5000-bucket, clamped to max
