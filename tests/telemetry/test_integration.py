"""End-to-end telemetry: spans, determinism, fault events, disabled parity."""

from __future__ import annotations

import pytest

from repro.analysis.torture import run_rate_case
from repro.faults import FaultKind, FaultPlan
from repro.sim.runner import simulate_workload
from repro.ssd.config import scaled_config
from repro.ssd.device import SSD
from repro.ssd.request import write
from repro.telemetry import DISABLED, Telemetry
from repro.telemetry.bridge import TelemetryObserver
from repro.telemetry.export import to_jsonl


@pytest.fixture(scope="module")
def config():
    return scaled_config(blocks_per_chip=8, wordlines_per_block=4)


def _traced_sim(config, seed=1):
    telemetry = Telemetry()
    sim = simulate_workload(
        config,
        "MailServer",
        "secSSD",
        seed=seed,
        write_multiplier=0.5,
        policy="defer",
        telemetry=telemetry,
    )
    return sim, telemetry


@pytest.fixture(scope="module")
def traced(config):
    return _traced_sim(config)


class TestTracedRun:
    def test_every_layer_publishes(self, traced):
        _, telemetry = traced
        cats = {e.cat for e in telemetry.bus.events}
        assert {"ftl.page", "ftl.sanitize", "ftl.gc", "ftl.flash"} <= cats
        assert {"sim.service", "sim.request", "sim.drain"} <= cats

    def test_gc_and_lock_batch_spans_nest(self, traced):
        _, telemetry = traced
        spans = [e for e in telemetry.bus.events if e.ph == "X"]
        gc = [e for e in spans if e.name == "gc"]
        batches = [e for e in spans if e.name == "lock_batch"]
        assert gc and batches
        # a lock batch fired *inside* a GC invocation records depth 1
        assert {e.args["depth"] for e in batches} == {0, 1}
        assert all(e.args["depth"] == 0 for e in gc)

    def test_lock_drain_spans_under_defer_policy(self, traced):
        sim, telemetry = traced
        drains = [e for e in telemetry.bus.events if e.cat == "sim.drain"]
        assert len(drains) == sim.report.lock_drains > 0
        assert sum(e.args["n_locks"] for e in drains) == (
            sim.report.deferred_lock_pulses
        )
        for e in drains:
            assert e.ph == "X" and e.tid.startswith("chip")

    def test_timestamps_on_the_sim_clock(self, traced):
        sim, telemetry = traced
        horizon = sim.report.sim_elapsed_us
        assert all(
            0.0 <= e.ts_us <= horizon for e in telemetry.bus.events
        )

    def test_metrics_snapshot_lands_in_run_result(self, traced):
        sim, telemetry = traced
        snap = sim.run.telemetry
        assert snap["counters"]["ftl.programs"] == sim.run.stats.flash_programs
        assert snap["counters"]["ftl.erases"] == sim.run.stats.flash_erases
        assert snap["counters"]["sim.lock_drains"] == sim.report.lock_drains
        assert snap["histograms"]["request_work_us.write"]["count"] > 0
        assert snap["trace"]["retained"] == len(telemetry.bus.events)

    def test_same_seed_identical_event_stream(self, config, traced):
        _, first = traced
        _, second = _traced_sim(config)
        assert to_jsonl(first.bus.events) == to_jsonl(second.bus.events)


class TestDisabledParity:
    def test_untraced_device_carries_no_telemetry(self, config):
        ssd = SSD(config, variant="secSSD", seed=1)
        assert ssd.telemetry is None
        assert ssd.ftl.tel is DISABLED
        assert not isinstance(ssd.ftl.observer, TelemetryObserver)

    def test_traced_and_untraced_runs_agree_functionally(self, config, traced):
        sim_traced, _ = traced
        sim_plain = simulate_workload(
            config,
            "MailServer",
            "secSSD",
            seed=1,
            write_multiplier=0.5,
            policy="defer",
        )
        assert sim_plain.run.stats.to_dict() == sim_traced.run.stats.to_dict()
        assert sim_plain.report.sim_elapsed_us == (
            sim_traced.report.sim_elapsed_us
        )
        assert sim_plain.report.latency == sim_traced.report.latency
        assert sim_plain.run.telemetry == {}

    def test_disabled_session_object_not_installed(self, config):
        disabled_like = Telemetry.__new__(Telemetry)  # enabled class attr
        disabled_like.__class__ = type(
            "Off", (Telemetry,), {"enabled": False}
        )
        ssd = SSD(config, variant="baseline", seed=1, telemetry=disabled_like)
        assert ssd.telemetry is None


class TestOpenLoopClock:
    def test_device_defaults_to_occupancy_clock(self, config):
        telemetry = Telemetry()
        ssd = SSD(config, variant="baseline", seed=1, telemetry=telemetry)
        ssd.submit(write(0, 4))
        ssd.submit(write(0, 4))
        times = [e.ts_us for e in telemetry.bus.events]
        assert times == sorted(times)
        assert times[-1] > 0.0
        assert times[-1] <= ssd.ftl.timing.elapsed_us


class TestFaultEvents:
    def test_injected_faults_emit_instants(self, config):
        telemetry = Telemetry()
        case = run_rate_case(
            config,
            "secSSD",
            FaultPlan.single(FaultKind.PROGRAM_FAIL, 1e-2, seed=1),
            "program",
            "rate=0.01",
            150,
            seed=1,
            telemetry=telemetry,
        )
        faults = [e for e in telemetry.bus.events if e.cat == "fault"]
        assert case.passed
        assert len(faults) == sum(case.injected.values()) > 0
        for e in faults:
            assert e.ph == "i"
            assert e.name == "program"
            assert "op_index" in e.args
