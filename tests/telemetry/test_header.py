"""Evidence-disclosure headers: JSONL round-trip and Chrome metadata."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import TraceBus, TraceEvent
from repro.telemetry.export import (
    HEADER_FORMAT,
    HEADER_KEY,
    chrome_trace,
    read_jsonl,
    to_jsonl,
    trace_header,
)


def _bus(capacity=4, sample=None, n=6):
    bus = TraceBus(capacity=capacity, sample=sample, clock=None)
    for i in range(n):
        bus.instant("ftl.page", "program", args={"gppa": i, "lpa": i, "secure": True})
    return bus


class TestHeader:
    def test_discloses_ring_buffer_drops(self):
        header = trace_header(_bus(capacity=4, n=6))
        assert header["format"] == HEADER_FORMAT
        assert header["capacity"] == 4
        assert header["retained"] == 4
        assert header["dropped_events"] == 2
        assert header["published"] == {"ftl.page": 6}

    def test_discloses_sample_strides(self):
        header = trace_header(_bus(capacity=64, sample={"ftl.page": 3}, n=6))
        assert header["sample_strides"] == {"ftl.page": 3}
        assert header["sampled_out"] == 4
        assert header["published"] == {"ftl.page": 6}  # pre-sampling count

    def test_run_meta_rides_along(self):
        header = trace_header(_bus(), workload="MailServer", seed=7)
        assert header["workload"] == "MailServer"
        assert header["seed"] == 7


class TestJsonlRoundTrip:
    def test_header_is_first_line_and_round_trips(self, tmp_path):
        bus = _bus(capacity=64, n=3)
        header = trace_header(bus, variant="secSSD")
        path = tmp_path / "t.jsonl"
        path.write_text(to_jsonl(bus.events, header=header))
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {HEADER_KEY: header}
        read_header, events = read_jsonl(path)
        assert read_header == header
        assert [e.to_dict() for e in events] == [e.to_dict() for e in bus.events]

    def test_headerless_stream_reads_back_none(self, tmp_path):
        bus = _bus(capacity=64, n=2)
        path = tmp_path / "t.jsonl"
        path.write_text(to_jsonl(bus.events))
        assert HEADER_KEY not in path.read_text()
        header, events = read_jsonl(path)
        assert header is None
        assert len(events) == 2

    def test_garbage_line_fails_loudly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "x"\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(path)

    def test_stray_header_mid_stream_rejected(self, tmp_path):
        bus = _bus(capacity=64, n=1)
        path = tmp_path / "t.jsonl"
        text = to_jsonl(bus.events, header=trace_header(bus))
        path.write_text(text + text.splitlines()[0] + "\n")
        with pytest.raises(ValueError, match="stray"):
            read_jsonl(path)

    def test_event_missing_field_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "program", "cat": "ftl.page"}\n')
        with pytest.raises(ValueError, match="missing field"):
            read_jsonl(path)


class TestChromeMetadata:
    def test_header_rides_as_metadata_record(self):
        bus = _bus(capacity=4, n=6)
        header = trace_header(bus, variant="secSSD")
        payload = chrome_trace({"secSSD": bus.events}, headers={"secSSD": header})
        records = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == HEADER_KEY
        ]
        assert len(records) == 1
        assert records[0]["args"]["dropped_events"] == 2

    def test_event_serialization_is_deterministic(self):
        event = TraceEvent("program", "ftl.page", "i", 1.0, args={"gppa": 1})
        bus_a, bus_b = _bus(n=4), _bus(n=4)
        assert to_jsonl(bus_a.events) == to_jsonl(bus_b.events)
        assert "dur_us" not in event.to_dict()  # instants stay compact
