"""Span tracing: nesting depth, clock capture, the disabled fast path."""

from __future__ import annotations

from repro.telemetry import DISABLED, Telemetry
from repro.telemetry.events import TraceBus
from repro.telemetry.spans import NULL_SPAN, NullTracer, Tracer


def _bus_and_tracer(now):
    bus = TraceBus(clock=lambda: now[0])
    return bus, Tracer(bus)


class TestSpans:
    def test_span_emits_complete_event_with_duration(self):
        now = [100.0]
        bus, tracer = _bus_and_tracer(now)
        with tracer.span("gc", cat="ftl.gc", chip=3):
            now[0] = 140.0
        (event,) = bus.events
        assert event.ph == "X"
        assert event.name == "gc"
        assert event.ts_us == 100.0
        assert event.dur_us == 40.0
        assert event.args == {"chip": 3, "depth": 0}

    def test_nested_spans_record_depth(self):
        now = [0.0]
        bus, tracer = _bus_and_tracer(now)
        with tracer.span("outer", cat="c"):
            assert tracer.depth == 1
            with tracer.span("inner", cat="c"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        # inner exits first, so it is emitted first
        inner, outer = bus.events
        assert (inner.name, inner.args["depth"]) == ("inner", 1)
        assert (outer.name, outer.args["depth"]) == ("outer", 0)

    def test_zero_duration_nesting_survives_frozen_clock(self):
        # the engine dispatches FTL work at one instant: depth is the
        # only nesting signal left, and it must survive
        now = [7.0]
        bus, tracer = _bus_and_tracer(now)
        with tracer.span("a", cat="c"):
            with tracer.span("b", cat="c"):
                pass
        assert all(e.dur_us == 0.0 for e in bus.events)
        assert {e.args["depth"] for e in bus.events} == {0, 1}


class TestDisabledPath:
    def test_null_tracer_hands_out_one_shared_span(self):
        tracer = NullTracer()
        s1 = tracer.span("gc", cat="ftl.gc", chip=1)
        s2 = tracer.span("other", cat="x")
        assert s1 is NULL_SPAN and s2 is NULL_SPAN

    def test_null_span_is_reentrant(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass

    def test_disabled_singleton_contract(self):
        assert DISABLED.enabled is False
        assert DISABLED.bus is None
        assert DISABLED.metrics is None
        assert DISABLED.snapshot() == {}
        assert DISABLED.tracer.span("x", cat="c") is NULL_SPAN

    def test_enabled_session_contract(self):
        tel = Telemetry(capacity=8)
        assert tel.enabled is True
        with tel.tracer.span("x", cat="c"):
            pass
        snap = tel.snapshot()
        assert snap["trace"]["retained"] == 1
        assert set(snap) == {"counters", "gauges", "histograms", "trace"}
