"""TraceBus: ring retention, category sampling, clock plumbing."""

from __future__ import annotations

import pytest

from repro.telemetry.events import TraceBus, TraceEvent


class TestTraceEvent:
    def test_to_dict_instant_has_no_duration(self):
        event = TraceEvent("e", "cat", "i", ts_us=5.0, tid="host", args={"k": 1})
        d = event.to_dict()
        assert "dur_us" not in d
        assert d["ts_us"] == 5.0
        assert d["args"] == {"k": 1}

    def test_to_dict_complete_has_duration(self):
        event = TraceEvent("e", "cat", "X", ts_us=5.0, dur_us=2.5)
        assert event.to_dict()["dur_us"] == 2.5


class TestRingRetention:
    def test_oldest_evicted_and_counted(self):
        bus = TraceBus(capacity=4)
        for i in range(6):
            bus.complete("c", f"e{i}", ts_us=float(i), dur_us=1.0)
        assert len(bus) == 4
        assert bus.dropped == 2
        assert [e.name for e in bus.events] == ["e2", "e3", "e4", "e5"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceBus(capacity=0)


class TestCategorySampling:
    def test_first_of_each_stride_kept(self):
        bus = TraceBus(sample={"hot": 3})
        for i in range(7):
            bus.instant("hot", f"e{i}")
        assert [e.name for e in bus.events] == ["e0", "e3", "e6"]
        assert bus.sampled_out == 4
        assert bus.category_counts["hot"] == 7  # published, pre-sampling

    def test_unsampled_categories_unaffected(self):
        bus = TraceBus(sample={"hot": 10})
        bus.instant("hot", "a")
        bus.instant("cold", "b")
        bus.instant("hot", "c")  # sampled out
        assert [e.name for e in bus.events] == ["a", "b"]

    def test_stride_validated(self):
        with pytest.raises(ValueError):
            TraceBus(sample={"c": 0})


class TestClock:
    def test_unwired_clock_reads_zero(self):
        bus = TraceBus()
        bus.instant("c", "e")
        assert bus.events[0].ts_us == 0.0

    def test_pluggable_clock_stamps_instants(self):
        now = [0.0]
        bus = TraceBus(clock=lambda: now[0])
        bus.instant("c", "a")
        now[0] = 42.5
        bus.instant("c", "b")
        assert [e.ts_us for e in bus.events] == [0.0, 42.5]


class TestStats:
    def test_shape_and_ordering(self):
        bus = TraceBus(capacity=2, sample={"b": 2})
        bus.instant("b", "1")
        bus.instant("a", "2")
        bus.instant("b", "3")  # sampled out
        bus.instant("a", "4")  # evicts "1"
        stats = bus.stats()
        assert stats == {
            "capacity": 2,
            "retained": 2,
            "dropped": 1,
            "sampled_out": 1,
            "published": {"a": 2, "b": 2},
        }
        assert list(stats["published"]) == ["a", "b"]  # sorted
