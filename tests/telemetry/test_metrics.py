"""MetricsRegistry: get-or-create semantics and snapshot determinism."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_histogram_custom_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", bounds=(1.0, 2.0))
        assert hist.bounds == (1.0, 2.0)

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("zeta").inc(2)
        reg.counter("alpha").inc()
        reg.gauge("mid").set(7.0)
        reg.histogram("lat").observe(80.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["counters"]["zeta"] == 2
        assert snap["gauges"] == {"mid": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1.0
        json.dumps(snap)  # must serialize without a custom encoder

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
