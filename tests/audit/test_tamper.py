"""The tamper matrix: every edit class of an archived trace is caught.

Each case copies the secSSD study's JSONL archive, applies one
adversarial edit, and re-audits against the originally issued
certificate.  Line 0 is the evidence-disclosure header (whose published
counts mention category *names*, so tamper edits must address event
lines explicitly rather than grepping the whole file).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.audit import audit_trace_file
from repro.telemetry.export import to_jsonl


def _codes(audit):
    return sorted({f.code for f in audit.report.findings})


@pytest.fixture()
def archive(audited_runs, tmp_path):
    """(path, certificate) for an archived secSSD trace."""
    run, audit = audited_runs["secSSD"]
    path = tmp_path / "secSSD.jsonl"
    path.write_text(to_jsonl(run.telemetry.bus.events, header=audit.header))
    return path, audit.certificate


def _lines(path):
    return path.read_text().splitlines()


def _rewrite(path, lines):
    path.write_text("\n".join(lines) + "\n")


def _sanitize_line_numbers(lines):
    # line 0 is the header; the ftl.sanitize category also carries
    # lock_batch *spans*, so match the instant name too.
    return [
        i
        for i, line in enumerate(lines[1:], start=1)
        if (record := json.loads(line)).get("cat") == "ftl.sanitize"
        and record.get("name") == "sanitize"
        and record.get("ph") == "i"
    ]


def test_untampered_archive_verifies(archive):
    path, cert = archive
    audit = audit_trace_file(path, certificate=cert)
    assert audit.ok
    assert audit.report.checks["certificate.ledger_digest"] == 1


def test_deleted_sanitize_event(archive):
    path, cert = archive
    lines = _lines(path)
    del lines[_sanitize_line_numbers(lines)[0]]
    _rewrite(path, lines)
    audit = audit_trace_file(path, certificate=cert)
    assert not audit.ok
    assert "event-count-mismatch" in _codes(audit)
    assert "ledger-digest-mismatch" in _codes(audit)


def test_backdated_sanitize_timestamp(archive):
    path, cert = archive
    lines = _lines(path)
    target = _sanitize_line_numbers(lines)[-1]
    record = json.loads(lines[target])
    record["ts_us"] = 0.0
    lines[target] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    _rewrite(path, lines)
    audit = audit_trace_file(path, certificate=cert)
    assert not audit.ok
    codes = _codes(audit)
    assert "event-order-violation" in codes
    assert "ledger-digest-mismatch" in codes


def test_reordered_instants(archive):
    path, cert = archive
    lines = _lines(path)
    # swap the first consecutive *instants* with strictly increasing
    # time (span records interleave, so the lines need not be adjacent)
    instants = [
        (i, json.loads(line)["ts_us"])
        for i, line in enumerate(lines[1:], start=1)
        if json.loads(line)["ph"] == "i"
    ]
    for (i, ts_a), (j, ts_b) in zip(instants, instants[1:]):
        if ts_a < ts_b:
            lines[i], lines[j] = lines[j], lines[i]
            break
    else:  # pragma: no cover - trace shape regression
        pytest.fail("no increasing instant pair to reorder")
    _rewrite(path, lines)
    audit = audit_trace_file(path, certificate=cert)
    assert not audit.ok
    assert "event-order-violation" in _codes(audit)


def test_forged_certificate(archive):
    path, cert = archive
    forged = copy.deepcopy(cert)
    forged["sections"]["exposure"]["p99_us"] = 1.0
    audit = audit_trace_file(path, certificate=forged)
    assert not audit.ok
    assert {"checksum-mismatch", "bad-signature"} <= set(_codes(audit))


def test_stripped_header_degrades_not_lies(archive):
    """A headerless archive still audits, but discloses incompleteness."""
    path, cert = archive
    header = json.loads(_lines(path)[0])["repro_trace"]
    _rewrite(path, _lines(path)[1:])
    audit = audit_trace_file(
        path, pages_per_block=int(header["pages_per_block"])
    )
    assert audit.ok  # a disclosure, not a verdict
    assert "incomplete-evidence" in _codes(audit)
    assert not audit.certificate["sections"]["evidence"]["complete"]
