"""Shared audited runs: four variants, one MailServer trace, one audit each.

Session-scoped on purpose -- the traced study is the expensive part and
every audit test file reads from it without mutating it (tamper tests
copy the serialized trace, never the live objects).
"""

from __future__ import annotations

import pytest

from repro.analysis.tracing import run_traced_study
from repro.audit import audit_sim_result
from repro.ssd import scaled_config

AUDIT_VARIANTS = ("erSSD", "scrSSD", "secSSD", "secSSD_nobLock")
AUDIT_SEED = 7


@pytest.fixture(scope="session")
def audit_config():
    return scaled_config(blocks_per_chip=8, wordlines_per_block=4)


@pytest.fixture(scope="session")
def audited_runs(audit_config):
    """variant -> (TracedRun, AuditResult) for the four sanitizing variants."""
    runs = run_traced_study(
        audit_config,
        "MailServer",
        AUDIT_VARIANTS,
        seed=AUDIT_SEED,
        capacity=1 << 20,
    )
    return {
        variant: (
            run,
            audit_sim_result(run.sim, run.telemetry, audit_config, seed=AUDIT_SEED),
        )
        for variant, run in runs.items()
    }
