"""Live progress lines: observability with zero artifact effect."""

from __future__ import annotations

import io

import pytest

from repro.analysis.parallel import GridTask, run_grid_detailed
from repro.analysis.progress import ProgressReporter


class FakeClock:
    """Deterministic monotonic clock: +1 s per reading."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _reporter():
    stream = io.StringIO()
    return ProgressReporter("fleet", stream=stream, clock=FakeClock()), stream


def _task(index, variant="secSSD"):
    return GridTask(index=index, variant=variant, workload="MailServer", seed=7)


class TestLineFormat:
    def test_begin_discloses_cache_split(self):
        reporter, stream = _reporter()
        reporter.begin(8, cached=3)
        assert stream.getvalue() == (
            "[fleet] 8 shard(s): running 5, 3 served from cache\n"
        )

    def test_done_counts_backlog_and_rate(self):
        reporter, stream = _reporter()
        reporter.begin(4)
        reporter.done(_task(0))
        last = stream.getvalue().splitlines()[-1]
        assert last.startswith("[fleet] shard 1/4 done (secSSD/MailServer)")
        assert "backlog 3" in last
        assert "shard/s" in last

    def test_retry_names_the_shard(self):
        reporter, stream = _reporter()
        reporter.begin(2)
        reporter.retry(_task(1, variant="erSSD"))
        assert "shard 1 (erSSD/MailServer) failed once" in stream.getvalue()

    def test_finish_summarizes(self):
        reporter, stream = _reporter()
        reporter.begin(2, cached=1)
        reporter.done(_task(0))
        reporter.finish()
        assert "complete: 1 run, 1 cached" in stream.getvalue()

    def test_default_stream_is_stderr_never_stdout(self, capsys):
        reporter = ProgressReporter("bench", clock=FakeClock())
        reporter.begin(1)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[bench] 1 shard(s)" in captured.err


def _square(task: GridTask) -> int:
    return task.index * task.index


class TestGridIntegration:
    TASKS = [_task(i) for i in range(5)]

    def test_results_identical_with_and_without_progress(self):
        reporter, stream = _reporter()
        plain = run_grid_detailed(_square, self.TASKS)
        watched = run_grid_detailed(_square, self.TASKS, progress=reporter)
        assert watched.results == plain.results == [0, 1, 4, 9, 16]
        lines = stream.getvalue().splitlines()
        # begin + one line per shard + finish
        assert len(lines) == 2 + len(self.TASKS)
        assert lines[-1].startswith("[fleet] complete: 5 run")

    def test_retry_reported_and_result_unchanged(self):
        calls: dict[int, int] = {}

        def flaky(task: GridTask) -> int:
            calls[task.index] = calls.get(task.index, 0) + 1
            if task.index == 2 and calls[task.index] == 1:
                raise RuntimeError("transient shard failure")
            return task.index

        reporter, stream = _reporter()
        result = run_grid_detailed(flaky, self.TASKS, progress=reporter)
        assert result.results == [0, 1, 2, 3, 4]
        assert result.retried == (2,)
        assert "failed once; retrying with the same seed" in stream.getvalue()

    def test_progress_failure_is_not_swallowed(self):
        # the reporter is observability, but a broken stream should not
        # silently corrupt a campaign either -- it surfaces.
        reporter = ProgressReporter(
            "fleet", stream=io.StringIO(), clock=FakeClock()
        )
        reporter.stream.close()
        with pytest.raises(ValueError):
            run_grid_detailed(_square, self.TASKS, progress=reporter)
