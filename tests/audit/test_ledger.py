"""Page-ledger replay: window math, erase expansion, exposure goldens."""

from __future__ import annotations

import pytest

from repro.audit.ledger import PageLedger, build_ledger
from repro.telemetry import TraceEvent

LATENCY = {"plock": 100.0, "block_lock": 300.0, "erase": 3500.0, "scrub": 100.0}


def _program(ts, gppa, lpa=0, secure=True):
    return TraceEvent(
        "program", "ftl.page", "i", ts,
        args={"gppa": gppa, "lpa": lpa, "secure": secure},
    )


def _invalidate(ts, gppa, lpa=0, reason="host-trim"):
    return TraceEvent(
        "invalidate", "ftl.page", "i", ts,
        args={"gppa": gppa, "lpa": lpa, "reason": reason},
    )


def _sanitize(ts, gppa, method="plock"):
    return TraceEvent(
        "sanitize", "ftl.sanitize", "i", ts,
        args={"gppa": gppa, "method": method},
    )


def _erase(ts, block):
    return TraceEvent("erase", "ftl.flash", "i", ts, args={"block": block})


def _ledger(events, pages_per_block=4):
    return build_ledger(events, pages_per_block, sanitize_latency_us=LATENCY)


class TestReplay:
    def test_window_adds_pulse_latency(self):
        ledger = _ledger(
            [_program(0.0, 7), _invalidate(10.0, 7), _sanitize(12.0, 7)]
        )
        (gen,) = ledger.generations
        assert gen.closed
        assert gen.exposure_us == pytest.approx(2.0)  # raw issue delta
        assert ledger.window_of(gen) == pytest.approx(102.0)  # + pLock pulse
        assert ledger.exposure_windows() == [pytest.approx(102.0)]

    def test_erase_expands_over_block_geometry(self):
        # four pages of block 1 programmed, two invalidated, block erased:
        # every still-open generation closes with the erase method.
        events = [_program(float(i), gppa, lpa=i) for i, gppa in enumerate(range(4, 8))]
        events += [_invalidate(10.0, 4), _invalidate(11.0, 5)]
        events.append(_erase(20.0, 1))
        ledger = _ledger(events, pages_per_block=4)
        assert ledger.open_generations() == []
        assert ledger.sanitized_by_method == {"erase": 4}
        assert ledger.exposure_windows() == [
            pytest.approx(3509.0),
            pytest.approx(3510.0),
        ]

    def test_insecure_pages_carry_no_windows(self):
        ledger = _ledger(
            [
                _program(0.0, 0, secure=False),
                _invalidate(1.0, 0),
                _sanitize(2.0, 0),
            ]
        )
        assert ledger.exposure_windows() == []

    def test_residual_secured_is_invalidated_but_open(self):
        ledger = _ledger([_program(0.0, 0), _invalidate(5.0, 0)])
        (residual,) = ledger.residual_secured()
        assert residual.gppa == 0
        assert ledger.summary()["residual_secured"] == 1

    def test_anomalies_counted(self):
        ledger = _ledger(
            [
                _program(0.0, 0),
                _program(1.0, 0),  # program over an open page
                _invalidate(2.0, 9),  # never programmed
                _invalidate(3.0, 0),
                _invalidate(4.0, 0),  # double invalidate
                _sanitize(5.0, 42),  # never programmed
            ]
        )
        assert ledger.anomalies == {
            "program-over-open-page": 1,
            "invalidate-without-program": 1,
            "double-invalidate": 1,
            "sanitize-without-program": 1,
        }

    def test_summary_count_is_integer(self):
        summary = _ledger(
            [_program(0.0, 0), _invalidate(1.0, 0), _sanitize(2.0, 0)]
        ).exposure_summary()
        assert summary["count"] == 1
        assert isinstance(summary["count"], int)

    def test_geometry_required(self):
        with pytest.raises(ValueError):
            build_ledger([], 0)


class TestDigest:
    EVENTS = [
        _program(0.0, 0),
        _program(1.0, 1, lpa=1),
        _invalidate(5.0, 0),
        _sanitize(7.0, 0),
    ]

    def test_stable_across_replays(self):
        assert _ledger(self.EVENTS).digest() == _ledger(self.EVENTS).digest()

    def test_sensitive_to_one_timestamp(self):
        edited = list(self.EVENTS)
        edited[3] = _sanitize(7.5, 0)
        assert _ledger(edited).digest() != _ledger(self.EVENTS).digest()

    def test_empty_ledger_digests(self):
        assert isinstance(PageLedger(pages_per_block=4).digest(), str)


class TestExposureGoldens:
    """Pinned paper-shaped asymmetry on the shared MailServer study.

    The absolute numbers are determinism goldens (same seed, same
    config -> same ledger); the *ordering* is the paper's claim: the
    erase-based design holds deleted data readable for a full relocate
    + erase (~3.5 ms) where Evanesco's locks close the window in one
    pulse (~100/300 us).
    """

    GOLDEN = {
        "erSSD": {"count": 6642, "p99_us": 3500.0},
        "scrSSD": {"count": 6961, "p99_us": 100.0},
        "secSSD": {"count": 6888, "p99_us": 300.0},
        "secSSD_nobLock": {"count": 6888, "p99_us": 100.0},
    }

    def test_exposure_summaries_match_goldens(self, audited_runs):
        for variant, golden in self.GOLDEN.items():
            summary = audited_runs[variant][1].ledger.exposure_summary()
            assert summary["count"] == golden["count"], variant
            assert summary["p99_us"] == pytest.approx(golden["p99_us"]), variant

    def test_secssd_p99_strictly_below_erssd(self, audited_runs):
        sec = audited_runs["secSSD"][1].ledger.exposure_summary()["p99_us"]
        er = audited_runs["erSSD"][1].ledger.exposure_summary()["p99_us"]
        assert sec < er

    def test_every_variant_audits_clean(self, audited_runs):
        for variant, (_, audit) in audited_runs.items():
            assert audit.ok, (variant, [f.to_dict() for f in audit.report.findings])
            assert audit.ledger.summary()["residual_secured"] == 0, variant
            assert audit.ledger.anomalies == {}, variant

    def test_exposure_section_matches_certificate(self, audited_runs):
        for _, audit in audited_runs.values():
            sections = audit.certificate["sections"]
            assert sections["exposure"] == audit.ledger.exposure_summary()
            assert sections["ledger"]["digest"] == audit.ledger.digest()
