"""Forensic pass: the ledger's claims against the raw-chip image."""

from __future__ import annotations

from repro.audit import audit_sim_result
from repro.audit.ledger import PageGeneration, PageLedger
from repro.audit.verifier import verify_device
from repro.analysis.tracing import run_traced_study
from repro.security.attacker import RawChipAttacker
from repro.ssd import scaled_config


def _codes(report):
    return sorted({f.code for f in report.findings})


def _readable_host_page(ssd):
    for page in RawChipAttacker(ssd).image_device().pages:
        if page.lpa is not None:
            return page
    raise AssertionError("device image holds no readable host page")


class TestDeviceCrossCheck:
    def test_secssd_probe_covers_sanitized_and_live_pages(self, audited_runs):
        _, audit = audited_runs["secSSD"]
        assert audit.ok
        assert audit.report.checks["device.sanitized_pages"] > 0
        assert audit.report.checks["device.live_pages"] > 0
        assert audit.certificate["sections"]["evidence"]["device_verified"]

    def test_fabricated_plock_claim_on_readable_page_refuted(self, audited_runs):
        # a ledger asserting pLock destroyed a page the attacker can
        # still read is exactly the lie the forensic pass exists for.
        run, _ = audited_runs["erSSD"]
        ssd = run.sim.device
        page = _readable_host_page(ssd)
        ledger = PageLedger(pages_per_block=4)
        ledger.generations.append(
            PageGeneration(
                gppa=page.gppa,
                lpa=page.lpa,
                secure=True,
                program_ts=0.0,
                invalidate_ts=1.0,
                invalidate_reason="host-trim",
                sanitize_ts=2.0,
                sanitize_method="plock",
            )
        )
        report = verify_device(ledger, ssd, complete=False)
        assert not report.ok
        assert "recoverable-sanitized-page" in _codes(report)

    def test_lpa_contradiction_is_divergence(self, audited_runs):
        run, _ = audited_runs["erSSD"]
        ssd = run.sim.device
        page = _readable_host_page(ssd)
        ledger = PageLedger(pages_per_block=4)
        ledger.generations.append(
            PageGeneration(
                gppa=page.gppa,
                lpa=page.lpa + 1,  # ledger disagrees about the tenant data
                secure=False,
                program_ts=0.0,
            )
        )
        report = verify_device(ledger, ssd, complete=False)
        assert "ledger-device-divergence" in _codes(report)

    def test_unledgered_readable_pages_fail_complete_evidence(self, audited_runs):
        run, _ = audited_runs["erSSD"]
        report = verify_device(
            PageLedger(pages_per_block=4), run.sim.device, complete=True
        )
        assert not report.ok
        assert "ledger-device-divergence" in _codes(report)


class TestKeyDeletionResidue:
    def test_cryptssd_ciphertext_residue_is_acceptable(self):
        # key deletion leaves ciphertext on the chips; the verifier must
        # accept that residue (and only that residue) for key_delete.
        config = scaled_config(blocks_per_chip=8, wordlines_per_block=4)
        (run,) = run_traced_study(
            config, "MailServer", ("cryptSSD",), seed=5, capacity=1 << 20
        ).values()
        audit = audit_sim_result(run.sim, run.telemetry, config, seed=5)
        assert audit.ok, [f.to_dict() for f in audit.report.findings]
        assert audit.ledger.sanitized_by_method.get("key_delete", 0) > 0
