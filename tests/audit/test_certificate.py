"""Certificate integrity: chain math, seal, and byte-determinism."""

from __future__ import annotations

import copy
import json

from repro.audit import audit_sim_result
from repro.audit.certificate import (
    CERT_FORMAT,
    build_certificate,
    certificate_text,
)
from repro.audit.verifier import verify_certificate
from repro.analysis.tracing import run_traced_study
from repro.ssd import scaled_config

SECTIONS = {
    "run": {"workload": "MailServer", "variant": "secSSD", "seed": 7},
    "ledger": {"digest": "abc123", "generations": 10},
    "exposure": {"count": 3, "p99_us": 300.0},
}


def _codes(report):
    return sorted({f.code for f in report.findings})


class TestBuildVerify:
    def test_fresh_certificate_verifies(self):
        report = verify_certificate(build_certificate(SECTIONS))
        assert report.ok
        assert report.checks["certificate.sections"] == len(SECTIONS)

    def test_chain_covers_sections_in_sorted_order(self):
        cert = build_certificate(SECTIONS)
        assert [link["section"] for link in cert["chain"]] == sorted(SECTIONS)
        assert cert["format"] == CERT_FORMAT

    def test_empty_sections_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build_certificate({})


class TestTamperedArtifact:
    def test_edited_section_breaks_checksum_chain_and_seal(self):
        cert = copy.deepcopy(build_certificate(SECTIONS))
        cert["sections"]["ledger"]["generations"] = 11
        report = verify_certificate(cert)
        assert not report.ok
        assert {"checksum-mismatch", "chain-mismatch", "bad-signature"} <= set(
            _codes(report)
        )

    def test_edited_chain_link_detected(self):
        cert = copy.deepcopy(build_certificate(SECTIONS))
        cert["chain"][0]["checksum"] = "0" * 64
        assert "checksum-mismatch" in _codes(verify_certificate(cert))

    def test_dropped_section_breaks_coverage(self):
        cert = copy.deepcopy(build_certificate(SECTIONS))
        del cert["sections"]["exposure"]
        report = verify_certificate(cert)
        assert not report.ok
        assert "chain-mismatch" in _codes(report)

    def test_wrong_key_breaks_only_the_seal(self):
        report = verify_certificate(build_certificate(SECTIONS), key=b"imposter")
        assert _codes(report) == ["bad-signature"]

    def test_unknown_format_rejected_outright(self):
        cert = copy.deepcopy(build_certificate(SECTIONS))
        cert["format"] = "evanesco-cert/999"
        assert _codes(verify_certificate(cert)) == ["bad-format"]


class TestByteDeterminism:
    def test_independent_identical_runs_issue_identical_bytes(self):
        config = scaled_config(blocks_per_chip=8, wordlines_per_block=4)

        def issue():
            (run,) = run_traced_study(
                config, "MailServer", ("secSSD",), seed=11, capacity=1 << 20
            ).values()
            return audit_sim_result(run.sim, run.telemetry, config, seed=11)

        first, second = issue(), issue()
        assert first.ok and second.ok
        assert certificate_text(first.certificate) == certificate_text(
            second.certificate
        )

    def test_text_is_canonical_json(self, audited_runs):
        cert = audited_runs["secSSD"][1].certificate
        text = certificate_text(cert)
        assert text.endswith("\n")
        assert json.loads(text) == cert
