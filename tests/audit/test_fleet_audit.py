"""Fleet-audited campaigns: certificates fold in, bytes stay identical."""

from __future__ import annotations

import io
import json

import pytest

from repro.audit import audit_trace_file
from repro.analysis.progress import ProgressReporter
from repro.fleet import FleetConfig, run_fleet
from repro.telemetry.export import validate_chrome_trace

CAMPAIGN = FleetConfig(
    devices=4,
    tenants=96,
    variants=("erSSD", "secSSD"),
    storm="deletion",
    devices_per_shard=2,
)


def _dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


@pytest.fixture(scope="module")
def audited_report() -> dict:
    return run_fleet(CAMPAIGN, audit=True).report


class TestCertificateFolding:
    def test_every_device_certified_and_verified(self, audited_report):
        for variant in CAMPAIGN.variants:
            fold = audited_report["variants"][variant]["sanitization"]
            assert fold["certified_devices"] == CAMPAIGN.devices
            assert fold["verified_ok"] == CAMPAIGN.devices

    def test_fleet_exposure_reproduces_paper_asymmetry(self, audited_report):
        variants = audited_report["variants"]
        sec = variants["secSSD"]["sanitization"]
        er = variants["erSSD"]["sanitization"]
        assert sec["exposure_p99_us"] < er["exposure_p99_us"]
        assert sec["residual_secured"] == 0

    def test_gauges_published(self, audited_report):
        gauges = audited_report["metrics"]["gauges"]
        for variant in CAMPAIGN.variants:
            assert gauges[f"fleet.{variant}.certified_devices"] == CAMPAIGN.devices
            assert gauges[f"fleet.{variant}.audit_failures"] == 0
            assert f"fleet.{variant}.exposure_p99_us" in gauges
            assert f"fleet.{variant}.residual_secured" in gauges

    def test_unaudited_campaign_carries_no_sanitization(self):
        report = run_fleet(
            FleetConfig(
                devices=2,
                tenants=48,
                variants=("secSSD",),
                storm="deletion",
                devices_per_shard=2,
            )
        ).report
        assert "sanitization" not in _dumps(report)


class TestByteIdentity:
    def test_parallel_with_progress_matches_serial(self, audited_report):
        progress = ProgressReporter(
            "fleet", stream=io.StringIO(), clock=lambda: 0.0
        )
        parallel = run_fleet(CAMPAIGN, jobs=2, audit=True, progress=progress)
        assert _dumps(parallel.report) == _dumps(audited_report)
        assert "+audit" in progress.stream.getvalue()

    def test_killed_and_resumed_matches_uninterrupted(
        self, audited_report, tmp_path
    ):
        resume = tmp_path / "campaign"
        assert (
            run_fleet(
                CAMPAIGN, resume_dir=resume, stop_after_shards=2, audit=True
            )
            is None
        )
        resumed = run_fleet(CAMPAIGN, jobs=2, resume_dir=resume, audit=True)
        assert resumed.cached_shards >= 2
        assert _dumps(resumed.report) == _dumps(audited_report)


class TestFleetTraces:
    def test_per_device_archives_audit_offline(self, tmp_path):
        cfg = FleetConfig(
            devices=2,
            tenants=48,
            variants=("secSSD",),
            storm="deletion",
            devices_per_shard=2,
        )
        run = run_fleet(cfg, trace_dir=tmp_path)
        jsonl = sorted(p for p in run.trace_files if p.suffix == ".jsonl")
        assert len(jsonl) == cfg.devices
        for path in jsonl:
            audit = audit_trace_file(path)
            assert audit.ok, [f.to_dict() for f in audit.report.findings]
        merged = tmp_path / "trace.json"
        assert merged in run.trace_files
        assert validate_chrome_trace(json.loads(merged.read_text())) == []
        # the emitted report is byte-independent of tracing
        assert _dumps(run.report) == _dumps(run_fleet(cfg).report)
