"""The torture harness's checkpoint-corruption sweep."""

from __future__ import annotations

import pytest

from repro.analysis.torture import (
    CHECKPOINT_MODES,
    run_checkpoint_case,
    run_torture,
)


class TestCheckpointCases:
    @pytest.mark.parametrize("mode", CHECKPOINT_MODES)
    def test_mode_passes_on_secssd(self, ck_config, mode):
        case = run_checkpoint_case(ck_config, "secSSD", mode, seed=11)
        assert case.outcome == "PASS"
        assert case.kind == "checkpoint"
        assert case.detail == mode
        assert case.injected == {"checkpoint_corruption": 1}

    def test_unknown_mode_rejected(self, ck_config):
        with pytest.raises(ValueError, match="unknown checkpoint mode"):
            run_checkpoint_case(ck_config, "secSSD", "zap", seed=11)


class TestSweepIntegration:
    def test_checkpoint_cases_ride_the_grid(self, ck_config, tmp_path):
        card = run_torture(
            ck_config,
            variants=("baseline",),
            seed=11,
            n_requests=40,
            rates=(),
            window=0,
            checkpoint_modes=("bitflip",),
            resume_dir=tmp_path,
        )
        assert card.passed
        assert [(c.kind, c.detail) for c in card.cases] == [
            ("checkpoint", "bitflip")
        ]
        assert card.cached_shards == 0
        # a second sweep over the same resume dir recomputes nothing
        again = run_torture(
            ck_config,
            variants=("baseline",),
            seed=11,
            n_requests=40,
            rates=(),
            window=0,
            checkpoint_modes=("bitflip",),
            resume_dir=tmp_path,
        )
        assert again.cached_shards == 1
        assert [c.to_dict() for c in again.cases] == [
            c.to_dict() for c in card.cases
        ]

    def test_scorecard_json_carries_shard_accounting(self, ck_config):
        card = run_torture(
            ck_config,
            variants=("baseline",),
            seed=11,
            n_requests=40,
            rates=(0.01,),
            window=0,
            checkpoint_modes=(),
        )
        import json

        payload = json.loads(card.to_json())
        assert payload["retried_shards"] == 0
        assert payload["cached_shards"] == 0
