"""Aging campaigns: lifetime verdict, determinism, worn-state fidelity.

The ``repro age`` contract mirrors the campaign layer's: the merged
lifetime payload must be identical for any ``--jobs`` count and across
kill+resume, and a checkpoint taken on a device that has already lost
blocks to P/E exhaustion must restore every piece of the wear state --
RETIRED blocks, erase counters, wear stats, and the pending
wear-leveling marks.
"""

from __future__ import annotations

import pytest

from repro.analysis.aging import (
    AGING_VARIANTS,
    format_lifetime,
    run_aging_campaign,
)
from repro.analysis.lifetime import LifetimeReport
from repro.analysis.torture import torture_requests
from repro.checkpoint.codec import canonical_dumps, encode
from repro.checkpoint.device import restore_device, snapshot_device
from repro.flash.block import BlockState
from repro.ftl.allocator import OutOfBlocksError
from repro.ssd.config import scaled_config
from repro.ssd.device import SSD

EVERY = 10
KW = dict(seed=1, write_multiplier=2.0)


def aging_config(pe_limit=8, **kw):
    """Wears out in seconds: 2 small chips, endurance of 8 erases."""
    return scaled_config(
        blocks_per_chip=16,
        wordlines_per_block=4,
        n_channels=1,
        chips_per_channel=2,
        pe_limit=pe_limit,
        wear_leveling_threshold=4,
        **kw,
    )


@pytest.fixture(scope="module")
def serial_payload(tmp_path_factory):
    root = tmp_path_factory.mktemp("age-serial")
    return run_aging_campaign(
        aging_config(), "MailServer", root, EVERY, **KW
    )


class TestLifetimeVerdict:
    def test_every_variant_reports(self, serial_payload):
        assert tuple(serial_payload["reports"]) == AGING_VARIANTS
        assert serial_payload["pe_limit"] == 8

    def test_this_horizon_kills_every_variant(self, serial_payload):
        # the config is tuned so first-wearout fires for all four --
        # otherwise the death-rank ordering below would be vacuous
        for variant, data in serial_payload["reports"].items():
            report = LifetimeReport.from_dict(data)
            assert not report.survived, variant
            assert report.worn_out_blocks >= 1, variant

    def test_secSSD_outlives_erSSD(self, serial_payload):
        reports = {
            variant: LifetimeReport.from_dict(data)
            for variant, data in serial_payload["reports"].items()
        }
        assert reports["secSSD"].death_rank >= reports["erSSD"].death_rank
        assert (
            reports["secSSD"].host_pages_to_first_block_death
            > reports["erSSD"].host_pages_to_first_block_death
        )

    def test_format_renders_table_and_verdict(self, serial_payload):
        text = format_lifetime(serial_payload)
        assert "pe_limit=8" in text
        assert "secSSD outlives erSSD" in text


class TestAgingDeterminism:
    def test_parallel_equals_serial(self, serial_payload, tmp_path_factory):
        root = tmp_path_factory.mktemp("age-jobs2")
        parallel = run_aging_campaign(
            aging_config(), "MailServer", root, EVERY, jobs=2, **KW
        )
        assert parallel["reports"] == serial_payload["reports"]

    def test_kill_resume_equals_serial(self, serial_payload, tmp_path_factory):
        root = tmp_path_factory.mktemp("age-resume")
        paused = run_aging_campaign(
            aging_config(), "MailServer", root, EVERY, stop_after=1, **KW
        )
        assert paused == {
            "paused": True,
            "workload": "MailServer",
            "pe_limit": 8,
            "variants": list(AGING_VARIANTS),
        }
        resumed = run_aging_campaign(
            aging_config(), "MailServer", root, EVERY, **KW
        )
        assert resumed["reports"] == serial_payload["reports"]


class TestWornStateRoundTrip:
    """Snapshot/restore fidelity after the first block death."""

    def state_bytes(self, ssd):
        return canonical_dumps(encode(snapshot_device(ssd)))

    def worn_device(self):
        ssd = SSD(aging_config(pe_limit=5), "secSSD", seed=3, checked=True)
        for request in torture_requests(50_000, ssd.logical_pages, seed=3):
            ssd.submit(request)
            if ssd.ftl.stats.worn_out_blocks >= 1:
                break
        assert ssd.ftl.stats.worn_out_blocks >= 1
        return ssd

    def test_worn_blocks_survive_restore(self):
        source = self.worn_device()
        target = SSD(aging_config(pe_limit=5), "secSSD", seed=3, checked=True)
        restore_device(target, None, snapshot_device(source))

        assert self.state_bytes(target) == self.state_bytes(source)
        src, dst = source.ftl, target.ftl
        assert dst.stats.worn_out_blocks == src.stats.worn_out_blocks
        assert (
            dst.stats.host_writes_at_first_wearout
            == src.stats.host_writes_at_first_wearout
        )
        assert dst._wear_level_due == src._wear_level_due
        for chip_id, (a, b) in enumerate(zip(src.chips, dst.chips)):
            assert dst.alloc.retired_blocks(chip_id) == src.alloc.retired_blocks(
                chip_id
            )
            for src_block, dst_block in zip(a.blocks, b.blocks):
                assert dst_block.erase_count == src_block.erase_count
                assert dst_block.state is src_block.state
                if src_block.state is BlockState.RETIRED:
                    assert dst_block.index in dst.alloc.retired_blocks(chip_id)

    def test_restored_device_wears_out_identically(self):
        """Near end of life, restored and original must fail in step."""
        source = self.worn_device()
        target = SSD(aging_config(pe_limit=5), "secSSD", seed=3, checked=True)
        restore_device(target, None, snapshot_device(source))

        outcomes = []
        for ssd in (source, target):
            try:
                for request in torture_requests(
                    400, ssd.logical_pages, seed=11
                ):
                    ssd.submit(request)
                outcomes.append(None)
            except OutOfBlocksError:
                outcomes.append("died")
        assert outcomes[0] == outcomes[1]
        assert self.state_bytes(target) == self.state_bytes(source)
