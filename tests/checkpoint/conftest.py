"""Fixtures for the checkpoint suite: a config every variant survives.

The 16-blocks-per-chip scale matters: it is the smallest device where
all six FTL variants complete the captured workload traces (the 8-block
``tiny_config`` is too small for erSSD's lazy-erase window under the
MailServer/DBServer traces).
"""

from __future__ import annotations

import pytest

from repro.ssd.config import scaled_config


@pytest.fixture
def ck_config():
    return scaled_config(
        blocks_per_chip=16,
        wordlines_per_block=4,
        n_channels=1,
        chips_per_channel=2,
    )
