"""Resumable campaigns: the byte-identity determinism contract.

The headline acceptance test: a campaign interrupted at a checkpoint
(or corrupted on disk) and resumed must produce a ``SimResult`` whose
``to_json()`` is byte-identical to the same campaign run uninterrupted
at the same cadence -- stats, latency percentiles, telemetry included.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint.campaign import (
    CampaignMismatchError,
    run_chunked_simulation,
)
from repro.checkpoint.codec import canonical_dumps, section_checksum
from repro.checkpoint.store import CheckpointError
from repro.faults import FaultKind, FaultPlan
from repro.sim.runner import simulate_workload
from repro.telemetry import Telemetry

EVERY = 150
KW = dict(seed=1, write_multiplier=0.5)


def newest_gen(directory):
    return max(
        p for p in directory.iterdir()
        if p.is_dir() and p.name.startswith("gen-") and "." not in p.name
    )


def interrupted_then_resumed(config, workload, variant, directory):
    run_chunked_simulation(
        config, workload, variant, directory, EVERY, stop_after=1, **KW
    )
    return run_chunked_simulation(
        config, workload, variant, directory, EVERY, resume=True, **KW
    )


class TestByteIdentity:
    @pytest.mark.parametrize("workload", ["MailServer", "DBServer"])
    @pytest.mark.parametrize(
        "variant", ["baseline", "erSSD", "scrSSD", "secSSD"]
    )
    def test_resumed_equals_uninterrupted(
        self, ck_config, tmp_path, variant, workload
    ):
        reference = run_chunked_simulation(
            ck_config, workload, variant, tmp_path / "ref", EVERY, **KW
        )
        resumed = interrupted_then_resumed(
            ck_config, workload, variant, tmp_path / "run"
        )
        assert resumed.to_json() == reference.to_json()

    def test_single_window_matches_unchunked_runner(self, ck_config, tmp_path):
        plain = simulate_workload(ck_config, "MailServer", "secSSD", **KW)
        chunked = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path, 10**9, **KW
        )
        assert chunked.to_json() == plain.to_json()

    def test_faults_and_telemetry_round_trip(self, ck_config, tmp_path):
        def build(directory, **extra):
            return run_chunked_simulation(
                ck_config, "MailServer", "secSSD", directory, EVERY,
                faults=FaultPlan.single(
                    FaultKind.PROGRAM_FAIL, 0.01, seed=1
                ),
                telemetry=Telemetry(),
                **KW, **extra,
            )

        reference = build(tmp_path / "ref")
        build(tmp_path / "run", stop_after=1)
        resumed = build(tmp_path / "run", resume=True)
        assert resumed.to_json() == reference.to_json()


class TestInterruption:
    def test_stop_after_returns_none_and_persists(self, ck_config, tmp_path):
        out = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path, EVERY,
            stop_after=1, **KW,
        )
        assert out is None
        assert (tmp_path / "gen-000001" / "MANIFEST.json").exists()
        assert (tmp_path / "campaign.json").exists()

    def test_mid_write_power_cut_then_resume(self, ck_config, tmp_path):
        from repro.checkpoint.store import StoreCrashInjected

        reference = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path / "ref", EVERY, **KW
        )
        directory = tmp_path / "run"
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            stop_after=1, **KW,
        )
        with pytest.raises(StoreCrashInjected):
            run_chunked_simulation(
                ck_config, "MailServer", "secSSD", directory, EVERY,
                resume=True, _crash_after="section:ftl", **KW,
            )
        final = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            resume=True, **KW,
        )
        assert final.to_json() == reference.to_json()
        reasons = [
            r["reason"] for r in final.run.extra["checkpoint_recovery"]
        ]
        assert "torn-write" in reasons


class TestCorruptionRecovery:
    def test_bit_flip_falls_back_and_reports(self, ck_config, tmp_path):
        reference = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path / "ref", EVERY, **KW
        )
        directory = tmp_path / "run"
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            stop_after=2, **KW,
        )
        target = newest_gen(directory) / "ftl.json"
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        target.write_bytes(bytes(raw))
        final = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            resume=True, **KW,
        )
        assert final.to_json() == reference.to_json()
        recovery = final.run.extra["checkpoint_recovery"]
        assert [r["reason"] for r in recovery] == ["bad-checksum"]
        assert (directory / "quarantine").is_dir()

    def test_checksum_valid_tamper_fails_restore_audit(
        self, ck_config, tmp_path
    ):
        # a duplicate L2P entry survives every checksum but breaks the
        # bijection invariant: the restore-time audit must catch it
        reference = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path / "ref", EVERY, **KW
        )
        directory = tmp_path / "run"
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            stop_after=2, **KW,
        )
        gen = newest_gen(directory)
        path = gen / "ftl.json"
        payload = json.loads(path.read_text())
        table = payload["l2p"]["l2p"]
        mapped = [
            i for i, v in enumerate(table) if isinstance(v, int) and v >= 0
        ]
        table[mapped[0]] = table[mapped[1]]
        text = canonical_dumps(payload)
        path.write_text(text)
        mpath = gen / "MANIFEST.json"
        manifest = json.loads(mpath.read_text())
        manifest["sections"]["ftl"] = {
            "checksum": section_checksum(text),
            "size": len(text.encode("utf-8")),
        }
        mpath.write_text(canonical_dumps(manifest))
        final = run_chunked_simulation(
            ck_config, "MailServer", "secSSD", directory, EVERY,
            resume=True, **KW,
        )
        assert final.to_json() == reference.to_json()
        recovery = final.run.extra["checkpoint_recovery"]
        assert [r["reason"] for r in recovery] == ["audit-failed"]

    def test_every_generation_corrupt_is_a_clean_error(
        self, ck_config, tmp_path
    ):
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path, EVERY,
            stop_after=1, **KW,
        )
        (tmp_path / "gen-000001" / "ftl.json").write_bytes(b"garbage")
        with pytest.raises(CheckpointError) as excinfo:
            run_chunked_simulation(
                ck_config, "MailServer", "secSSD", tmp_path, EVERY,
                resume=True, **KW,
            )
        assert len(excinfo.value.reports) == 1


class TestCampaignManifest:
    def test_resume_requires_a_manifest(self, ck_config, tmp_path):
        with pytest.raises(CampaignMismatchError, match="no campaign"):
            run_chunked_simulation(
                ck_config, "MailServer", "secSSD", tmp_path, EVERY,
                resume=True, **KW,
            )

    @pytest.mark.parametrize(
        "override, field",
        [
            (dict(seed=2), "seed"),
            (dict(write_multiplier=0.7), "write_multiplier"),
            (dict(checkpoint_every=EVERY + 1), "checkpoint_every"),
        ],
    )
    def test_diverging_parameters_are_named(
        self, ck_config, tmp_path, override, field
    ):
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path, EVERY,
            stop_after=1, **KW,
        )
        kwargs = dict(KW, checkpoint_every=EVERY)
        kwargs.update(override)
        every = kwargs.pop("checkpoint_every")
        with pytest.raises(CampaignMismatchError, match=field):
            run_chunked_simulation(
                ck_config, "MailServer", "secSSD", tmp_path, every,
                resume=True, **kwargs,
            )

    def test_different_variant_diverges(self, ck_config, tmp_path):
        run_chunked_simulation(
            ck_config, "MailServer", "secSSD", tmp_path, EVERY,
            stop_after=1, **KW,
        )
        with pytest.raises(CampaignMismatchError, match="variant"):
            run_chunked_simulation(
                ck_config, "MailServer", "baseline", tmp_path, EVERY,
                resume=True, **KW,
            )
