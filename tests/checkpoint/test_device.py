"""Device snapshot/restore: full-state fidelity and the restore audit."""

from __future__ import annotations

import pytest

from repro.analysis.torture import torture_requests
from repro.checkpoint.codec import canonical_dumps, encode
from repro.checkpoint.device import restore_device, snapshot_device
from repro.faults import FaultKind, FaultPlan
from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.engine import QueueingEngine
from repro.sim.ops import RecordingTiming
from repro.sim.policies import policy_by_name
from repro.sim.runner import capture_block_trace
from repro.ssd.device import SSD


def state_bytes(ssd):
    return canonical_dumps(encode(snapshot_device(ssd)))


def drive(ssd, n, seed):
    for request in torture_requests(n, ssd.logical_pages, seed):
        ssd.submit(request)


class TestSnapshotRestore:
    def test_restored_state_is_byte_identical(self, ck_config):
        source = SSD(ck_config, "secSSD", seed=3, checked=True)
        drive(source, 150, seed=3)
        snapshot = snapshot_device(source)

        target = SSD(ck_config, "secSSD", seed=3, checked=True)
        restore_device(target, None, snapshot)
        assert state_bytes(target) == state_bytes(source)

    def test_restored_device_evolves_identically(self, ck_config):
        source = SSD(ck_config, "secSSD", seed=3, checked=True)
        drive(source, 150, seed=3)
        target = SSD(ck_config, "secSSD", seed=3, checked=True)
        restore_device(target, None, snapshot_device(source))
        # identical future: same traffic -> same full state afterwards
        drive(source, 80, seed=17)
        drive(target, 80, seed=17)
        assert state_bytes(target) == state_bytes(source)

    def test_fault_rng_streams_round_trip(self, ck_config):
        plan = FaultPlan.single(FaultKind.PROGRAM_FAIL, 0.02, seed=5)
        source = SSD(ck_config, "secSSD", seed=5, checked=True, faults=plan)
        drive(source, 150, seed=5)
        target = SSD(ck_config, "secSSD", seed=5, checked=True, faults=plan)
        restore_device(target, None, snapshot_device(source))
        drive(source, 80, seed=23)
        drive(target, 80, seed=23)
        assert state_bytes(target) == state_bytes(source)

    @pytest.mark.parametrize(
        "variant", ["baseline", "erSSD", "scrSSD", "secSSD_nobLock", "cryptSSD"]
    )
    def test_every_variant_round_trips(self, ck_config, variant):
        source = SSD(ck_config, variant, seed=3, checked=True)
        drive(source, 120, seed=3)
        target = SSD(ck_config, variant, seed=3, checked=True)
        restore_device(target, None, snapshot_device(source))
        assert state_bytes(target) == state_bytes(source)


class TestParityValidation:
    def test_checked_snapshot_needs_checked_target(self, ck_config):
        source = SSD(ck_config, "secSSD", seed=3, checked=True)
        drive(source, 60, seed=3)
        target = SSD(ck_config, "secSSD", seed=3, checked=False)
        with pytest.raises(ValueError):
            restore_device(target, None, snapshot_device(source))

    def test_fault_snapshot_needs_injecting_target(self, ck_config):
        plan = FaultPlan.single(FaultKind.PROGRAM_FAIL, 0.02, seed=5)
        source = SSD(ck_config, "secSSD", seed=5, checked=True, faults=plan)
        drive(source, 60, seed=5)
        target = SSD(ck_config, "secSSD", seed=5, checked=True)
        with pytest.raises(ValueError):
            restore_device(target, None, snapshot_device(source))


class TestEngineState:
    def build(self, config):
        requests, steady_start = capture_block_trace(
            config, "MailServer", seed=1, write_multiplier=0.3
        )
        ssd = SSD(config, "secSSD", seed=1, checked=True)
        ssd.instrument_timing(RecordingTiming.from_config(config))
        engine = QueueingEngine(
            ssd,
            requests,
            ClosedLoopArrivals(),
            policy_by_name("fifo"),
            steady_start=steady_start,
        )
        return requests, ssd, engine

    def test_window_boundary_is_quiescent(self, ck_config):
        requests, ssd, engine = self.build(ck_config)
        engine.run_window(len(requests) // 2)
        engine.assert_quiescent()  # must not raise

    def test_state_round_trips_to_identical_report(self, ck_config):
        requests, source_ssd, source = self.build(ck_config)
        source.run_window(len(requests) // 2)
        snapshot = snapshot_device(source_ssd, source)

        _, target_ssd, target = self.build(ck_config)
        restore_device(target_ssd, target, snapshot)
        source.run_window(len(requests))
        target.run_window(len(requests))
        a = source._report()
        b = target._report()
        assert b.latency == a.latency
        assert b.utilization == a.utilization

    def test_state_dict_refuses_non_quiescence(self, ck_config):
        requests, ssd, engine = self.build(ck_config)
        engine.run_window(10)
        engine.in_flight = 1  # simulate a mid-flight capture attempt
        with pytest.raises(RuntimeError, match="not quiescent"):
            engine.state_dict()

    def test_load_rejects_mismatched_server_count(self, ck_config):
        requests, ssd, engine = self.build(ck_config)
        engine.run_window(10)
        state = engine.state_dict()
        state = dict(state, servers=state["servers"][:-1])
        with pytest.raises(ValueError):
            engine.load_state_dict(state)
