"""Tagged-JSON codec: exact round-trips, canonical bytes, strictness."""

from __future__ import annotations

import random
from collections import deque

import numpy as np
import pytest

from repro.checkpoint.codec import (
    CodecError,
    canonical_dumps,
    decode,
    encode,
    section_checksum,
)
from repro.faults import FaultKind
from repro.ftl.page_status import PageStatus


def roundtrip(value):
    return decode(encode(value))


class TestRoundTrips:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 3.25, "text", ""):
            out = roundtrip(value)
            assert out == value
            assert type(out) is type(value)

    def test_tuple_vs_list_distinction(self):
        value = [(0, "host", 3), [1, 2], ("gc",)]
        out = roundtrip(value)
        assert out == value
        assert isinstance(out[0], tuple)
        assert isinstance(out[1], list)

    def test_nested_containers(self):
        value = {"q": deque([1, (2, 3)]), "s": {4, 5}, "t": (deque(), set())}
        out = roundtrip(value)
        assert out == value
        assert isinstance(out["q"], deque)
        assert isinstance(out["s"], set)
        assert isinstance(out["t"][0], deque)

    def test_enums(self):
        value = [PageStatus.SECURED, FaultKind.POWER_LOSS]
        out = roundtrip(value)
        assert out == value
        assert type(out[0]) is PageStatus
        assert type(out[1]) is FaultKind

    def test_int_keyed_dict(self):
        value = {3: "a", 1: (True,)}
        out = roundtrip(value)
        assert out == value
        assert all(isinstance(k, int) for k in out)

    def test_dict_with_literal_tag_key(self):
        value = {"__t": "not-a-tag", "x": 1}
        assert roundtrip(value) == value

    def test_ndarray_exact(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert (out == arr).all()

    def test_python_random_state_via_tuple(self):
        rng = random.Random(7)
        rng.random()
        state = rng.getstate()
        clone = random.Random()
        clone.setstate(roundtrip(state))
        assert clone.random() == rng.random()

    def test_numpy_generator_stream_continues(self):
        rng = np.random.default_rng(5)
        rng.random(3)
        clone = roundtrip(rng)
        assert (clone.random(4) == rng.random(4)).all()


class TestCanonicalBytes:
    def test_key_order_does_not_matter(self):
        a = canonical_dumps(encode({"b": 1, "a": 2}))
        b = canonical_dumps(encode({"a": 2, "b": 1}))
        assert a == b

    def test_set_order_does_not_matter(self):
        a = canonical_dumps(encode({3, 1, 2}))
        b = canonical_dumps(encode({2, 3, 1}))
        assert a == b

    def test_trailing_newline(self):
        assert canonical_dumps(encode([1])).endswith("\n")

    def test_checksum_tracks_content(self):
        a = section_checksum(canonical_dumps(encode({"x": 1})))
        b = section_checksum(canonical_dumps(encode({"x": 2})))
        assert a != b
        assert len(a) == 64


class TestStrictness:
    def test_unknown_type_rejected_on_encode(self):
        class Opaque:
            pass

        with pytest.raises(CodecError):
            encode(Opaque())

    def test_unknown_tag_rejected_on_decode(self):
        with pytest.raises(CodecError):
            decode({"__t": "mystery", "v": []})

    def test_unknown_enum_member_rejected(self):
        with pytest.raises(CodecError):
            decode({"__t": "enum", "cls": "FaultKind", "name": "NOPE"})

    def test_unknown_enum_class_rejected(self):
        with pytest.raises(CodecError):
            decode({"__t": "enum", "cls": "Ghost", "name": "X"})
