"""Checkpoint store: crash-consistency protocol and the corruption matrix.

Every corruption shape the ISSUE names -- truncation, per-section
bit-flip, missing manifest, stale format version, torn write -- must
end in quarantine + fallback to the previous good generation, or (when
no generation survives) a structured :class:`CheckpointError`, never a
traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint.store import (
    FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
    StoreCrashInjected,
)

STATE_A = {"table": (1, 2, 3), "bad": {4}, "note": "gen one"}
STATE_B = {"table": (9, 8, 7), "bad": set(), "note": "gen two"}


def two_generations(root) -> CheckpointStore:
    store = CheckpointStore(root)
    store.write_generation({"ftl": STATE_A, "chips": [1]}, meta={"stop": 10})
    store.write_generation({"ftl": STATE_B, "chips": [2]}, meta={"stop": 20})
    return store


def gen_dir(store: CheckpointStore, generation: int):
    return store.root / f"gen-{generation:06d}"


class TestWriteRead:
    def test_round_trip_newest(self, tmp_path):
        store = two_generations(tmp_path)
        load = store.latest_good()
        assert load.generation == 2
        assert load.sections["ftl"] == STATE_B
        assert load.meta["stop"] == 20
        assert load.corrupt == []

    def test_generation_numbers_ascend(self, tmp_path):
        store = two_generations(tmp_path)
        assert store.generations() == [1, 2]
        assert store.write_generation({"ftl": STATE_A}) == 3

    def test_campaign_manifest_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.read_campaign_manifest() is None
        store.write_campaign_manifest({"seed": 7, "workload": "MailServer"})
        assert store.read_campaign_manifest() == {
            "seed": 7,
            "workload": "MailServer",
        }


class TestCrashPoints:
    @pytest.mark.parametrize("point", ["section:chips", "section:ftl", "manifest"])
    def test_crash_before_rename_preserves_prior_generations(
        self, tmp_path, point
    ):
        store = two_generations(tmp_path)
        store._crash_after = point
        with pytest.raises(StoreCrashInjected):
            store.write_generation({"chips": [3], "ftl": STATE_A})
        # the torn tmp directory is swept + quarantined, gen 2 still wins
        load = store.latest_good()
        assert load.generation == 2
        assert [r.reason for r in load.corrupt] == ["torn-write"]
        assert (store.root / "quarantine").is_dir()

    def test_crash_after_rename_is_a_complete_generation(self, tmp_path):
        store = two_generations(tmp_path)
        store._crash_after = "rename"
        with pytest.raises(StoreCrashInjected):
            store.write_generation({"ftl": STATE_A})
        load = store.latest_good()
        assert load.generation == 3
        assert load.corrupt == []


class TestCorruptionMatrix:
    def test_truncated_section_falls_back(self, tmp_path):
        store = two_generations(tmp_path)
        target = gen_dir(store, 2) / "ftl.json"
        target.write_bytes(target.read_bytes()[:10])
        load = store.latest_good()
        assert load.generation == 1
        assert load.sections["ftl"] == STATE_A
        assert [r.generation for r in load.corrupt] == [2]
        assert "gen-000002" in load.corrupt[0].quarantined_to

    def test_bit_flip_in_each_section(self, tmp_path):
        for section in ("ftl", "chips"):
            root = tmp_path / section
            store = two_generations(root)
            target = gen_dir(store, 2) / f"{section}.json"
            raw = bytearray(target.read_bytes())
            raw[len(raw) // 2] ^= 0x01
            target.write_bytes(bytes(raw))
            load = store.latest_good()
            assert load.generation == 1
            assert load.corrupt[0].reason == "bad-checksum"
            assert section in load.corrupt[0].detail

    def test_missing_manifest_falls_back(self, tmp_path):
        store = two_generations(tmp_path)
        (gen_dir(store, 2) / "MANIFEST.json").unlink()
        load = store.latest_good()
        assert load.generation == 1
        assert len(load.corrupt) == 1

    def test_missing_section_file_falls_back(self, tmp_path):
        store = two_generations(tmp_path)
        (gen_dir(store, 2) / "chips.json").unlink()
        load = store.latest_good()
        assert load.generation == 1
        assert len(load.corrupt) == 1

    def test_stale_format_version_falls_back(self, tmp_path):
        store = two_generations(tmp_path)
        mpath = gen_dir(store, 2) / "MANIFEST.json"
        manifest = json.loads(mpath.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        mpath.write_text(json.dumps(manifest))
        load = store.latest_good()
        assert load.generation == 1
        assert len(load.corrupt) == 1

    def test_all_generations_corrupt_raises_structured_error(self, tmp_path):
        store = two_generations(tmp_path)
        for generation in (1, 2):
            target = gen_dir(store, generation) / "ftl.json"
            target.write_bytes(b"garbage")
        with pytest.raises(CheckpointError) as excinfo:
            store.latest_good()
        err = excinfo.value
        assert len(err.reports) == 2
        text = err.render()
        assert "quarantined" in text

    def test_empty_store_raises_structured_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError) as excinfo:
            store.latest_good()
        assert excinfo.value.reports == []
        assert "no checkpoint generations" in excinfo.value.render()

    def test_quarantine_preserves_evidence(self, tmp_path):
        store = two_generations(tmp_path)
        target = gen_dir(store, 2) / "ftl.json"
        target.write_bytes(b"garbage")
        store.latest_good()
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert (quarantined[0] / "ftl.json").read_bytes() == b"garbage"
