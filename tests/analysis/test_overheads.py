"""Section 5.5 overhead accounting."""

import pytest

from repro.analysis.overheads import (
    AreaOverhead,
    LatencyOverhead,
    summarize_overheads,
)
from repro.flash.geometry import CellType, Geometry


class TestLatencyOverhead:
    def test_plock_under_14_3_percent_of_program(self):
        """Paper: tpLock is less than 14.3 % of tPROG (100us / 700us)."""
        assert LatencyOverhead().plock_vs_program <= 0.143

    def test_block_lock_under_8_6_percent_of_erase(self):
        """Paper: tbLock is less than 8.6 % of tBERS (300us / 3.5ms)."""
        assert LatencyOverhead().block_lock_vs_erase <= 0.086

    def test_ratios_exact(self):
        lat = LatencyOverhead()
        assert lat.plock_vs_program == pytest.approx(100 / 700)
        assert lat.block_lock_vs_erase == pytest.approx(300 / 3500)


class TestAreaOverhead:
    def test_27_flag_cells_per_tlc_wordline(self):
        """Paper: 27 flag cells per WL (9 per page x 3 pages)."""
        area = AreaOverhead(Geometry(cell_type=CellType.TLC))
        assert area.flag_cells_per_wordline == 27

    def test_flags_fit_in_spare_area(self):
        """Paper: flags use *existing* spare cells -> zero net area."""
        area = AreaOverhead(Geometry(cell_type=CellType.TLC))
        assert area.fits_in_spare()
        assert area.spare_fraction_used < 0.01

    def test_majority_circuit_small(self):
        area = AreaOverhead(Geometry())
        assert area.majority_transistors == 200

    def test_one_bridge_transistor_per_pin(self):
        area = AreaOverhead(Geometry())
        assert area.bridge_transistors == 8

    def test_mlc_uses_18_flag_cells(self):
        area = AreaOverhead(Geometry(cell_type=CellType.MLC))
        assert area.flag_cells_per_wordline == 18


class TestSummary:
    def test_summary_keys(self):
        summary = summarize_overheads()
        assert summary["plock_vs_program"] < 0.143
        assert summary["block_lock_vs_erase"] < 0.086
        assert summary["flag_cells_per_wordline"] == 27.0
