"""Torture harness: workload determinism, leak check, scorecard identity."""

import json

from repro.analysis.torture import (
    TortureCase,
    run_power_loss_case,
    run_rate_case,
    run_torture,
    stale_secured_exposures,
    torture_requests,
)
from repro.faults import FaultKind, FaultPlan
from repro.ssd.device import SSD
from repro.ssd.request import RequestOp, trim, write


class TestTortureRequests:
    def test_same_seed_same_stream(self):
        a = torture_requests(200, 1024, seed=5)
        b = torture_requests(200, 1024, seed=5)
        assert a == b

    def test_different_seed_differs(self):
        assert torture_requests(200, 1024, seed=5) != torture_requests(
            200, 1024, seed=6
        )

    def test_requests_stay_in_bounds(self):
        for request in torture_requests(500, 64, seed=1):
            assert 0 <= request.lpa
            assert request.lpa + request.npages <= 64

    def test_mix_contains_all_ops(self):
        ops = {r.op for r in torture_requests(300, 1024, seed=2)}
        assert ops == {RequestOp.READ, RequestOp.WRITE, RequestOp.TRIM}


class TestStaleSecuredExposures:
    def test_vacuous_for_no_promise_variants(self, tiny_config):
        ssd = SSD(tiny_config, "baseline")
        ssd.submit(write(0, secure=True))
        ssd.submit(trim(0))
        assert stale_secured_exposures(ssd) == []

    def test_detects_unsanitized_stale_data(self, tiny_config):
        # plant a readable secured stale copy behind the FTL's back: a
        # dead version the sanitization machinery never saw must be
        # reported as an exposure
        ssd = SSD(tiny_config, "secSSD")
        ssd.submit(write(0, secure=True))
        chip = ssd.ftl.chips[1]
        block = chip.free_blocks()[-1]
        ppn = block * tiny_config.geometry.pages_per_block
        chip.program_page(ppn, "ghost", {"secure": True, "lpa": 0, "seq": 999})
        assert stale_secured_exposures(ssd) == [ssd.ftl.make_gppa(1, ppn)]

    def test_clean_on_secssd(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD", checked=True)
        for request in torture_requests(120, ssd.logical_pages, seed=4):
            ssd.submit(request)
        assert stale_secured_exposures(ssd) == []

    def test_live_copies_are_not_exposures(self, tiny_config):
        ssd = SSD(tiny_config, "secSSD")
        for lpa in range(8):
            ssd.submit(write(lpa, secure=True))
        assert stale_secured_exposures(ssd) == []


class TestCaseRunners:
    def test_rate_case_passes_and_reports_faults(self, tiny_config):
        plan = FaultPlan.single(FaultKind.PROGRAM_FAIL, 0.05, seed=3)
        case = run_rate_case(
            tiny_config, "secSSD", plan, "program", "rate=0.05", 120, seed=3
        )
        assert case.passed
        assert case.outcome == "PASS"
        assert case.injected.get("program", 0) > 0
        assert case.robustness["program_fails"] > 0

    def test_power_loss_case_recovers(self, tiny_config):
        case = run_power_loss_case(tiny_config, "secSSD", 40, 120, seed=3)
        assert case.outcome == "PASS"
        assert case.kind == "power_loss"
        assert case.detail == "op=40"
        assert case.injected == {"power_loss": 1}

    def test_power_loss_beyond_run_is_skipped(self, tiny_config):
        case = run_power_loss_case(
            tiny_config, "baseline", 10_000_000, 20, seed=3
        )
        assert case.outcome.startswith("SKIP")
        assert case.passed  # a skip is not a failure


class TestScorecard:
    def run(self, tiny_config, jobs=1, **kwargs):
        return run_torture(
            tiny_config,
            variants=("baseline", "secSSD"),
            seed=11,
            n_requests=60,
            rates=(0.01,),
            window_start=20,
            window=2,
            jobs=jobs,
            # the checkpoint sweep has its own tests (tests/checkpoint/);
            # keeping it out preserves the exact case counts below
            checkpoint_modes=(),
            **kwargs,
        )

    def test_sweep_passes_and_covers_expected_cases(self, tiny_config):
        card = self.run(tiny_config)
        assert card.passed
        assert card.failures == []
        # baseline: 3 rate cases + 2 power-loss; secSSD adds the two lock
        # kinds and the three forced lock-failure cases
        by_variant = {}
        for case in card.cases:
            by_variant.setdefault(case.variant, []).append(case)
        assert len(by_variant["baseline"]) == 5
        assert len(by_variant["secSSD"]) == 10
        forced = [c for c in card.cases if c.detail == "forced"]
        assert {c.kind for c in forced} == {
            "plock", "block_lock", "plock+block_lock"
        }

    def test_byte_identical_reruns(self, tiny_config):
        assert self.run(tiny_config).to_json() == self.run(tiny_config).to_json()

    def test_parallel_jobs_byte_identical(self, tiny_config):
        # the whole case grid on 3 workers: the merged scorecard must be
        # byte-for-byte the serial one (canonical-order merge contract)
        assert (
            self.run(tiny_config, jobs=3).to_json()
            == self.run(tiny_config).to_json()
        )

    def test_json_round_trips(self, tiny_config):
        card = self.run(tiny_config)
        payload = json.loads(card.to_json())
        assert payload["passed"] is True
        assert payload["n_cases"] == len(card.cases)
        assert payload["cases"][0]["variant"] == "baseline"

    def test_format_reports_verdict(self, tiny_config):
        card = self.run(tiny_config)
        text = card.format()
        assert "torture: PASS" in text
        assert f"seed {card.seed}" in text

    def test_failure_detection(self):
        case = TortureCase(
            variant="secSSD",
            kind="plock",
            detail="forced",
            outcome="FAIL: 3 readable stale secured page(s)",
        )
        assert not case.passed
