"""Scorecard measurement collection (chip-level subset for speed)."""

import pytest

from repro.analysis.paper_targets import evaluate
from repro.analysis.scorecard import (
    collect_chip_measurements,
    collect_system_measurements,
)
from repro.ssd.config import scaled_config


@pytest.fixture(scope="module")
def chip_measurements():
    return collect_chip_measurements()


class TestChipMeasurements:
    def test_all_chip_level_targets_covered(self, chip_measurements):
        experiments = {exp for exp, _ in chip_measurements}
        assert experiments == {"fig9", "fig12", "fig6", "fig10", "fig11b", "sec5.5"}

    def test_all_chip_level_targets_pass(self, chip_measurements):
        checks = evaluate(chip_measurements)
        assert checks
        failed = [c for c in checks if not c.passed]
        assert not failed, [
            (c.target.experiment, c.target.metric, c.measured) for c in failed
        ]


class TestSystemMeasurements:
    def test_mini_system_sweep(self):
        """A tiny device still yields all system-level keys (bands may be
        looser than the official bench config, so only structure is
        asserted here)."""
        config = scaled_config(blocks_per_chip=12, wordlines_per_block=8)
        m = collect_system_measurements(config, write_multiplier=0.5)
        assert ("fig14a", "secssd_norm_iops_avg") in m
        assert ("headline", "iops_vs_scrssd_avg") in m
        assert ("fig14c", "gap_at_60pct_secure_max") in m
        assert 0.0 <= m[("fig14a", "secssd_norm_iops_avg")] <= 1.05
