"""Paper-target registry and scorecard evaluation."""

import pytest

from repro.analysis.paper_targets import (
    PAPER_TARGETS,
    Target,
    TargetCheck,
    evaluate,
    find_target,
    format_scorecard,
)


class TestTarget:
    def test_band_check(self):
        t = Target("x", "m", "p", lo=1.0, hi=2.0)
        assert t.check(1.5)
        assert not t.check(0.5)
        assert not t.check(2.5)

    def test_one_sided_bands(self):
        assert Target("x", "m", "p", lo=1.0).check(99.0)
        assert Target("x", "m", "p", hi=1.0).check(-5.0)

    def test_exact_check(self):
        t = Target("x", "m", "p", exact="ii")
        assert t.check("ii")
        assert not t.check("iii")

    def test_boundaries_inclusive(self):
        t = Target("x", "m", "p", lo=1.0, hi=2.0)
        assert t.check(1.0)
        assert t.check(2.0)


class TestRegistry:
    def test_registry_nonempty(self):
        assert len(PAPER_TARGETS) >= 20

    def test_keys_unique(self):
        keys = [(t.experiment, t.metric) for t in PAPER_TARGETS]
        assert len(keys) == len(set(keys))

    def test_every_target_has_criteria(self):
        for t in PAPER_TARGETS:
            assert t.exact is not None or t.lo is not None or t.hi is not None

    def test_find_target(self):
        t = find_target("fig9", "selected_combination")
        assert t.exact == "ii"

    def test_find_missing(self):
        with pytest.raises(KeyError):
            find_target("fig99", "nope")

    def test_known_experiments_covered(self):
        experiments = {t.experiment for t in PAPER_TARGETS}
        assert {"fig6", "fig9", "fig10", "fig12", "fig14a", "headline"} <= experiments


class TestEvaluate:
    def test_partial_measurements_skip_missing(self):
        checks = evaluate({("fig9", "selected_combination"): "ii"})
        assert len(checks) == 1
        assert checks[0].passed

    def test_failure_detected(self):
        checks = evaluate({("fig9", "selected_combination"): "vi"})
        assert not checks[0].passed

    def test_unknown_keys_ignored(self):
        checks = evaluate({("nope", "nothing"): 1.0})
        assert checks == []

    def test_scorecard_rendering(self):
        checks = [
            TargetCheck(find_target("fig9", "selected_combination"), "ii", True)
        ]
        out = format_scorecard(checks)
        assert "PASS" in out
        assert "fig9" in out
