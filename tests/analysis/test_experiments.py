"""Experiment runners on miniature configurations."""

import pytest

from repro.analysis.experiments import (
    run_figure14,
    run_secure_fraction_sweep,
    run_timeplot_study,
    run_versioning_study,
    run_workload_on_variant,
)
from repro.ssd.config import scaled_config


@pytest.fixture(scope="module")
def mini_config():
    return scaled_config(blocks_per_chip=12, wordlines_per_block=8)


class TestRunWorkload:
    def test_single_run(self, mini_config):
        result = run_workload_on_variant(
            mini_config, "MailServer", "baseline", write_multiplier=0.25
        )
        assert result.iops > 0
        assert result.stats.host_writes > 0

    def test_unknown_workload(self, mini_config):
        with pytest.raises(ValueError):
            run_workload_on_variant(mini_config, "Nope", "baseline")


class TestFigure14Runner:
    @pytest.fixture(scope="class")
    def results(self, mini_config):
        return run_figure14(
            mini_config,
            workloads=("MailServer",),
            variants=("baseline", "secSSD", "secSSD_nobLock"),
            write_multiplier=0.5,
        )

    def test_baseline_normalizes_to_one(self, results):
        fig = results["MailServer"]
        assert fig.outcomes["baseline"].normalized_iops == pytest.approx(1.0)
        assert fig.outcomes["baseline"].normalized_waf == pytest.approx(1.0)

    def test_secssd_close_to_baseline(self, results):
        assert results["MailServer"].outcomes["secSSD"].normalized_iops > 0.85

    def test_block_lock_ablation_orders(self, results):
        fig = results["MailServer"]
        assert (
            fig.outcomes["secSSD"].normalized_iops
            >= fig.outcomes["secSSD_nobLock"].normalized_iops
        )

    def test_plock_reduction_metric(self, results):
        red = results["MailServer"].plock_reduction_from_block_lock()
        assert 0.0 <= red <= 1.0

    def test_requires_baseline(self, mini_config):
        with pytest.raises(ValueError):
            run_figure14(mini_config, variants=("secSSD",))


class TestSecureFractionSweep:
    def test_monotone_tendency(self, mini_config):
        sweep = run_secure_fraction_sweep(
            mini_config,
            workloads=("DBServer",),
            fractions=(0.5, 1.0),
            write_multiplier=0.5,
        )
        series = sweep["DBServer"]
        assert series[0.5] >= series[1.0] - 0.02  # fewer locks -> no slower


class TestVersioningStudy:
    def test_summary_shape(self, mini_config):
        out = run_versioning_study(
            mini_config, "MailServer", write_multiplier=0.5
        )
        assert set(out.summary) == {"uv", "mv"}
        assert out.summary["mv"]["count"] > 0

    def test_secure_variant_suppresses_exposure(self, mini_config):
        insecure = run_versioning_study(
            mini_config, "MailServer", write_multiplier=0.5
        )
        secure = run_versioning_study(
            mini_config, "MailServer", write_multiplier=0.5, variant="secSSD"
        )
        assert (
            secure.summary["mv"]["tinsec_max"]
            < insecure.summary["mv"]["tinsec_max"]
        )


class TestTimeplotStudy:
    def test_returns_both_classes(self, mini_config):
        plots = run_timeplot_study(mini_config, "MailServer", write_multiplier=0.5)
        assert "uv" in plots and "mv" in plots
        for series in plots.values():
            assert series  # non-empty trajectories
            assert all(s.tick >= 0 for s in series)

    def test_mv_file_shows_invalid_pages(self, mini_config):
        plots = run_timeplot_study(mini_config, "DBServer", write_multiplier=0.5)
        assert max(s.invalid for s in plots["mv"]) > 0
