"""Parallel orchestrator: determinism contract, merge identity, errors.

The worker callables live at module level: ``run_grid(jobs > 1)``
ships them to worker processes by pickled qualified name.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench_engine import (
    compare_bench,
    compare_bench_detailed,
    format_compare,
    run_bench,
    write_bench_json,
)
from repro.analysis.parallel import (
    DeterministicTimer,
    GridResultCache,
    GridTask,
    GridTaskError,
    derive_seed,
    run_grid,
    run_grid_detailed,
)
from repro.ssd import scaled_config


def _square(task: GridTask) -> int:
    return task.seed * task.seed


def _explode_on_seed_7(task: GridTask) -> int:
    if task.seed == 7:
        raise ValueError("injected worker crash")
    return task.seed


def _tasks(seeds):
    return [
        GridTask(index=i, variant=f"v{i}", workload="Mobile", seed=seed)
        for i, seed in enumerate(seeds)
    ]


class TestRunGrid:
    def test_results_in_canonical_order(self):
        assert run_grid(_square, _tasks([3, 1, 4, 1, 5])) == [9, 1, 16, 1, 25]

    def test_parallel_matches_serial(self):
        tasks = _tasks(range(8))
        assert run_grid(_square, tasks, jobs=4) == run_grid(_square, tasks)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_grid(_square, _tasks([1]), jobs=0)

    def test_serial_crash_names_the_cell(self):
        with pytest.raises(GridTaskError) as excinfo:
            run_grid(_explode_on_seed_7, _tasks([1, 7, 2]))
        message = str(excinfo.value)
        assert "variant='v1'" in message
        assert "workload='Mobile'" in message
        assert "seed=7" in message
        assert "injected worker crash" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_worker_crash_names_the_cell(self):
        with pytest.raises(GridTaskError) as excinfo:
            run_grid(_explode_on_seed_7, _tasks([1, 7, 2]), jobs=2)
        message = str(excinfo.value)
        assert "seed=7" in message and "v1" in message

    def test_crash_reports_lowest_failing_index(self):
        # two failing cells: the error must name the earlier one, so the
        # report does not depend on completion order
        tasks = _tasks([7, 1, 7])
        with pytest.raises(GridTaskError) as excinfo:
            run_grid(_explode_on_seed_7, tasks, jobs=3)
        assert excinfo.value.task.index == 0


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "secSSD", "Mobile", 3) == derive_seed(
            1, "secSSD", "Mobile", 3
        )

    def test_sensitive_to_every_coordinate(self):
        base = derive_seed(1, "secSSD", "Mobile", 3)
        assert derive_seed(2, "secSSD", "Mobile", 3) != base
        assert derive_seed(1, "erSSD", "Mobile", 3) != base
        assert derive_seed(1, "secSSD", "Mobile", 4) != base

    def test_known_value_pins_the_derivation(self):
        # regression pin: changing the hash construction would silently
        # re-seed every derived grid, so the exact value is part of the API
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert 0 <= derive_seed(1, "x") < 2**63

    def test_domain_none_matches_undomained(self):
        # the default must stay byte-compatible with the pre-domain API:
        # every existing grid seed is pinned by artifacts and tests
        assert derive_seed(1, "secSSD", "Mobile", 3) == derive_seed(
            1, "secSSD", "Mobile", 3, domain=None
        )

    def test_distinct_domains_decorrelate(self):
        plain = derive_seed(1, "secSSD", "Mobile", 3)
        fleet = derive_seed(1, "secSSD", "Mobile", 3, domain="fleet")
        bench = derive_seed(1, "secSSD", "Mobile", 3, domain="bench")
        assert len({plain, fleet, bench}) == 3

    def test_domain_separator_prevents_aliasing(self):
        # "ab" + coord "c" and "a" + coord "bc" must not collide: the
        # NUL separator keeps the domain out of the coordinate space
        assert derive_seed(1, "c", domain="ab") != derive_seed(
            1, "bc", domain="a"
        )


class TestDeterministicTimer:
    def test_fixed_step(self):
        timer = DeterministicTimer(step_s=0.5)
        assert timer() == 0.0
        assert timer() == 0.5
        assert timer() == 1.0

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            DeterministicTimer(step_s=0.0)


@pytest.fixture(scope="module")
def bench_config():
    return scaled_config(blocks_per_chip=8, wordlines_per_block=4)


def _bench(config, jobs):
    return run_bench(
        config,
        workload="Mobile",
        variants=("baseline", "secSSD"),
        queue_depth=8,
        seed=1,
        write_multiplier=0.3,
        repeats=2,
        jobs=jobs,
        timer=DeterministicTimer(),
    )


class TestParallelBench:
    def test_artifact_byte_identical_serial_vs_parallel(
        self, bench_config, tmp_path
    ):
        serial = write_bench_json(_bench(bench_config, jobs=1), tmp_path / "s.json")
        parallel = write_bench_json(_bench(bench_config, jobs=4), tmp_path / "p.json")
        assert serial.read_bytes() == parallel.read_bytes()

    def test_real_clock_simulated_metrics_identical(self, bench_config):
        # without timer injection only wall-derived numbers may differ
        wall_keys = {"wall_s", "events_per_sec"}
        strip = lambda payload: [
            {k: v for k, v in run.items() if k not in wall_keys}
            for run in payload["runs"]
        ]
        serial = run_bench(
            bench_config, workload="Mobile", variants=("baseline",),
            queue_depth=8, write_multiplier=0.3, repeats=2, jobs=1,
        )
        parallel = run_bench(
            bench_config, workload="Mobile", variants=("baseline",),
            queue_depth=8, write_multiplier=0.3, repeats=2, jobs=2,
        )
        assert strip(serial) == strip(parallel)

    def test_rejects_bad_repeats(self, bench_config):
        with pytest.raises(ValueError):
            run_bench(bench_config, repeats=0)


class TestCompareBench:
    @pytest.fixture(scope="class")
    def payload(self, bench_config):
        return _bench(bench_config, jobs=1)

    def test_identical_payload_passes(self, payload):
        assert compare_bench(payload, payload) == []

    def test_round_trip_through_json_passes(self, payload, tmp_path):
        path = write_bench_json(payload, tmp_path / "b.json")
        baseline = json.loads(path.read_text())
        assert compare_bench(payload, baseline) == []

    def test_injected_iops_regression_fails(self, payload):
        regressed = json.loads(json.dumps(payload))
        run = regressed["runs"][0]
        run["iops"] = float(run["iops"]) * 0.8  # 20 % drop, 5 % band
        problems = compare_bench(regressed, payload)
        assert len(problems) == 1
        assert "iops" in problems[0]
        assert f"{run['workload']}/{run['variant']}" in problems[0]

    def test_injected_p99_regression_fails(self, payload):
        regressed = json.loads(json.dumps(payload))
        regressed["runs"][1]["p99_all_us"] = (
            float(regressed["runs"][1]["p99_all_us"]) * 1.5
        )
        problems = compare_bench(regressed, payload)
        assert problems and "p99_all_us" in problems[0]

    def test_within_tolerance_passes(self, payload):
        wiggled = json.loads(json.dumps(payload))
        for run in wiggled["runs"]:
            run["iops"] = float(run["iops"]) * 0.97  # inside the 5 % band
        assert compare_bench(wiggled, payload) == []
        assert compare_bench(wiggled, payload, tolerance=0.01) != []

    def test_wall_clock_never_gates(self, payload):
        slower = json.loads(json.dumps(payload))
        for run in slower["runs"]:
            run["wall_s"] = float(run["wall_s"]) * 100.0
            run["events_per_sec"] = float(run["events_per_sec"]) / 100.0
        assert compare_bench(slower, payload) == []

    def test_missing_variant_fails(self, payload):
        partial = json.loads(json.dumps(payload))
        partial["runs"] = partial["runs"][:1]
        problems = compare_bench(partial, payload)
        assert problems and "not benchmarked" in problems[0]

    def test_new_variant_without_baseline_ignored(self, payload):
        grown = json.loads(json.dumps(payload))
        extra = json.loads(json.dumps(grown["runs"][0]))
        extra["variant"] = "cryptSSD"
        grown["runs"].append(extra)
        assert compare_bench(grown, payload) == []

    def test_negative_tolerance_rejected(self, payload):
        with pytest.raises(ValueError):
            compare_bench(payload, payload, tolerance=-0.1)


# ---------------------------------------------------------------------------
# bounded retry + shard cache (run_grid_detailed)
# ---------------------------------------------------------------------------
_CALLS: dict[int, int] = {}


def _flaky_first_attempt(task: GridTask) -> int:
    """Fails the first attempt of odd-seed cells, passes the retry."""
    attempt = _CALLS.get(task.index, 0) + 1
    _CALLS[task.index] = attempt
    if task.seed % 2 and attempt == 1:
        raise ValueError("transient shard failure")
    return task.seed * 10


def _parent_pid_only(task: GridTask) -> int:
    """Fails in any worker process, passes on the in-process retry."""
    import os

    if os.getpid() != task.payload:
        raise ValueError("worker-process transient")
    return task.seed


def _never_called(task: GridTask) -> int:
    raise AssertionError("cached shard must not be recomputed")


class TestBoundedRetry:
    def test_single_retry_recovers_and_is_counted(self):
        _CALLS.clear()
        grid = run_grid_detailed(_flaky_first_attempt, _tasks([1, 2, 3, 4]))
        assert grid.results == [10, 20, 30, 40]
        assert grid.retried_shards == 2
        assert grid.retried == (0, 2)  # ascending canonical indices
        # the retry re-ran the identical task: exactly two attempts each
        assert _CALLS[0] == 2 and _CALLS[2] == 2
        assert _CALLS[1] == 1 and _CALLS[3] == 1

    def test_retry_happens_in_process_after_pool_failure(self):
        import os

        tasks = [
            GridTask(index=i, variant="v", workload="Mobile", seed=i,
                     payload=os.getpid())
            for i in range(3)
        ]
        grid = run_grid_detailed(_parent_pid_only, tasks, jobs=2)
        assert grid.results == [0, 1, 2]
        assert grid.retried_shards == 3

    def test_double_failure_names_lowest_index(self):
        with pytest.raises(GridTaskError) as excinfo:
            run_grid_detailed(_explode_on_seed_7, _tasks([7, 1, 7]))
        assert excinfo.value.task.index == 0
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestGridResultCache:
    def test_second_run_serves_every_shard_from_disk(self, tmp_path):
        tasks = _tasks([3, 1, 4])
        cache = GridResultCache(tmp_path)
        first = run_grid_detailed(_square, tasks, cache=cache)
        assert first.cached_shards == 0
        # _never_called proves no shard is recomputed
        second = run_grid_detailed(_never_called, tasks, cache=cache)
        assert second.results == first.results
        assert second.cached_shards == 3

    def test_corrupt_shard_is_quarantined_and_recomputed(self, tmp_path):
        tasks = _tasks([3, 1, 4])
        cache = GridResultCache(tmp_path)
        run_grid_detailed(_square, tasks, cache=cache)
        victim = tmp_path / "task-000001.json"
        victim.write_bytes(victim.read_bytes()[:-9])
        again = run_grid_detailed(_square, tasks, cache=cache)
        assert again.results == [9, 1, 16]
        assert again.cached_shards == 2
        assert list(tmp_path.glob("*.corrupt"))

    def test_shard_keyed_to_other_coordinates_is_rejected(self, tmp_path):
        cache = GridResultCache(tmp_path)
        run_grid_detailed(
            _square, [GridTask(index=0, variant="v", workload="w", seed=2)],
            cache=cache,
        )
        # same index, different seed: the stale shard must not be served
        grid = run_grid_detailed(
            _square, [GridTask(index=0, variant="v", workload="w", seed=5)],
            cache=cache,
        )
        assert grid.results == [25]
        assert grid.cached_shards == 0
        assert list(tmp_path.glob("*.corrupt"))

    def test_state_adapters_round_trip_rich_results(self, tmp_path):
        cache = GridResultCache(
            tmp_path,
            to_state=lambda r: {"v": r},
            from_state=lambda s: s["v"],
        )
        task = GridTask(index=0, variant="v", workload="w", seed=3)
        cache.store(task, (1, 2))
        hit, value = cache.load(task)
        assert hit and value == (1, 2)


class TestCompareBenchDetailed:
    @pytest.fixture(scope="class")
    def payload(self, bench_config):
        return _bench(bench_config, jobs=1)

    def test_full_table_even_when_clean(self, payload):
        diff = compare_bench_detailed(payload, payload)
        assert diff["regressed"] is False
        assert len(diff["runs"]) == 2
        for row in diff["runs"]:
            metrics = {m["metric"] for m in row["metrics"]}
            assert metrics == {"iops", "p99_read_us", "p99_all_us"}
            assert all(not m["regressed"] for m in row["metrics"])

    def test_regression_flags_exact_metric(self, payload):
        regressed = json.loads(json.dumps(payload))
        run = regressed["runs"][0]
        run["iops"] = float(run["iops"]) * 0.8
        diff = compare_bench_detailed(regressed, payload)
        assert diff["regressed"] is True
        flagged = [
            m for row in diff["runs"] for m in row["metrics"] if m["regressed"]
        ]
        assert [m["metric"] for m in flagged] == ["iops"]
        assert flagged[0]["delta_pct"] == pytest.approx(-20.0)
        assert flagged[0]["current"] < flagged[0]["limit"]

    def test_missing_variant_is_a_regressed_row(self, payload):
        partial = json.loads(json.dumps(payload))
        partial["runs"] = partial["runs"][:1]
        diff = compare_bench_detailed(partial, payload)
        assert diff["regressed"] is True
        missing = [row for row in diff["runs"] if row["missing"]]
        assert len(missing) == 1 and missing[0]["metrics"] == []

    def test_format_compare_renders_verdict(self, payload):
        clean = format_compare(compare_bench_detailed(payload, payload))
        assert "ok" in clean.splitlines()[0]
        regressed = json.loads(json.dumps(payload))
        regressed["runs"][0]["iops"] = 0.1
        text = format_compare(compare_bench_detailed(regressed, payload))
        assert "REGRESSED" in text.splitlines()[0]
        assert "iops" in text
