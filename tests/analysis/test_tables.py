"""Table rendering."""

from repro.analysis.tables import (
    format_secure_fraction,
    format_table1,
    render_table,
)


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0]

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_column_alignment(self):
        out = render_table(["col"], [["xxxxxx"], ["y"]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3].rstrip()) or len(lines[2]) >= 6


class TestFormatters:
    def test_table1_formatting(self):
        summary = {
            "Mobile": {
                "uv": {
                    "vaf_avg": 0.24, "vaf_max": 1.5,
                    "tinsec_avg": 0.02, "tinsec_max": 0.43,
                },
                "mv": {
                    "vaf_avg": 1.0, "vaf_max": 2.0,
                    "tinsec_avg": 0.41, "tinsec_max": 2.3,
                },
            }
        }
        out = format_table1(summary)
        assert "Mobile" in out
        assert "0.24" in out

    def test_secure_fraction_formatting(self):
        out = format_secure_fraction({"Mobile": {0.6: 0.99, 1.0: 0.97}})
        assert "60%" in out
        assert "0.990" in out
