"""Lifetime / wear analysis."""

import random

import pytest

from repro.analysis.lifetime import LifetimeEstimate, WearStats, erase_reduction
from repro.ftl import FTL_VARIANTS
from repro.ssd.request import write


def churn(variant, config, rounds=3, seed=0, secure=True):
    ftl = FTL_VARIANTS[variant](config)
    rng = random.Random(seed)
    span = int(config.logical_pages * 0.85)
    for _ in range(config.physical_pages * rounds):
        ftl.submit(write(rng.randrange(span), secure=secure))
    return ftl


class TestWearStats:
    def test_fresh_device(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        wear = WearStats.from_ftl(ftl)
        assert wear.total_erases == 0
        assert wear.evenness == 1.0
        assert wear.cv == 0.0

    def test_counts_accumulate(self, tiny_config):
        ftl = churn("baseline", tiny_config)
        wear = WearStats.from_ftl(ftl)
        assert wear.total_erases == ftl.stats.flash_erases
        assert wear.min_erases <= wear.mean_erases <= wear.max_erases

    def test_evenness_bounds(self, tiny_config):
        wear = WearStats.from_ftl(churn("baseline", tiny_config))
        assert 0.0 < wear.evenness <= 1.0


class TestLifetimeEstimate:
    def test_fresh_device_is_unbounded(self, tiny_config):
        ftl = FTL_VARIANTS["baseline"](tiny_config)
        est = LifetimeEstimate.from_ftl(ftl)
        assert est.lifetime_host_pages == float("inf")

    def test_estimate_scales_with_endurance(self, tiny_config):
        ftl = churn("baseline", tiny_config)
        lo = LifetimeEstimate.from_ftl(ftl, endurance_cycles=500)
        hi = LifetimeEstimate.from_ftl(ftl, endurance_cycles=1000)
        assert hi.lifetime_host_pages == pytest.approx(
            2 * lo.lifetime_host_pages
        )

    def test_derating_by_wear_imbalance(self, tiny_config):
        est = LifetimeEstimate.from_ftl(churn("baseline", tiny_config))
        assert est.lifetime_host_pages <= est.lifetime_host_pages_even

    def test_relative_comparison(self, tiny_config):
        base = LifetimeEstimate.from_ftl(churn("baseline", tiny_config))
        same = LifetimeEstimate.from_ftl(churn("baseline", tiny_config))
        assert base.relative_to(same) == pytest.approx(1.0)


class TestPaperLifetimeClaim:
    """Section 1: secSSD greatly reduces erases vs erSSD/scrSSD."""

    def test_secssd_outlives_scrssd(self, tiny_config):
        sec = LifetimeEstimate.from_ftl(churn("secSSD", tiny_config))
        scr = LifetimeEstimate.from_ftl(churn("scrSSD", tiny_config))
        assert sec.relative_to(scr) > 1.5

    def test_secssd_vastly_outlives_erssd(self, tiny_config):
        sec = LifetimeEstimate.from_ftl(churn("secSSD", tiny_config, rounds=1))
        er = LifetimeEstimate.from_ftl(churn("erSSD", tiny_config, rounds=1))
        assert sec.relative_to(er) > 3.0

    def test_erase_reduction_metric(self, tiny_config):
        sec = WearStats.from_ftl(churn("secSSD", tiny_config))
        scr = WearStats.from_ftl(churn("scrSSD", tiny_config))
        red = erase_reduction(sec, scr)
        assert 0.3 < red < 0.95

    def test_secssd_matches_baseline_lifetime(self, tiny_config):
        sec = LifetimeEstimate.from_ftl(churn("secSSD", tiny_config))
        base = LifetimeEstimate.from_ftl(churn("baseline", tiny_config))
        assert sec.relative_to(base) == pytest.approx(1.0, rel=0.1)
