"""Shared fixtures: small geometries and device configs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkers.sanitizer import set_default_checked
from repro.flash.geometry import CellType, Geometry
from repro.ssd.config import SSDConfig

# The whole suite runs under the runtime invariant sanitizer: every FTL
# constructed without an explicit ``checked=`` argument gets a shadow
# checker attached.  Event-level checks (status transitions, pending
# sanitizes, fresh-sanitize probes) run on every batch; the O(device)
# full pass (bijection, block counters, probe-all) runs every 13th batch
# to keep the suite fast while still exercising it thousands of times.
set_default_checked(True, interval=13)


@pytest.fixture
def tiny_geometry() -> Geometry:
    """8 blocks x 4 WLs x 3 pages (TLC) -- smallest structurally-faithful chip."""
    return Geometry(
        blocks_per_chip=8,
        wordlines_per_block=4,
        cell_type=CellType.TLC,
        page_size_bytes=16 * 1024,
        cells_per_wordline=64,
    )


@pytest.fixture
def small_geometry() -> Geometry:
    """16 blocks x 8 WLs x 3 pages -- room for GC dynamics."""
    return Geometry(
        blocks_per_chip=16,
        wordlines_per_block=8,
        cell_type=CellType.TLC,
        page_size_bytes=16 * 1024,
        cells_per_wordline=256,
    )


@pytest.fixture
def tiny_config(small_geometry) -> SSDConfig:
    """2x2 chips of the small geometry: 1536 physical pages."""
    return SSDConfig(
        n_channels=2,
        chips_per_channel=2,
        geometry=small_geometry,
        overprovision=0.2,
    )


@pytest.fixture
def single_chip_config(small_geometry) -> SSDConfig:
    return SSDConfig(
        n_channels=1,
        chips_per_channel=1,
        geometry=small_geometry,
        overprovision=0.2,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
