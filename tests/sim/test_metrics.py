"""Percentiles, latency recording, and queue-depth series."""

import pytest

from repro.sim.metrics import PERCENTILES, DepthSeries, LatencyRecorder, percentile
from repro.ssd.request import RequestOp


class TestPercentile:
    def test_nearest_rank_on_known_data(self):
        data = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 50.0) == 50.0  # rank ceil(0.5 * 100) - 1 = 49
        assert percentile(data, 100.0) == 100.0

    def test_single_sample_is_every_percentile(self):
        for _, q in PERCENTILES:
            assert percentile([42.0], q) == 42.0

    def test_empty_data_reports_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_q_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)


class TestLatencyRecorder:
    def test_groups_by_request_class(self):
        rec = LatencyRecorder()
        rec.add(RequestOp.READ, 10.0)
        rec.add(RequestOp.READ, 30.0)
        rec.add(RequestOp.WRITE, 100.0)
        assert rec.count(RequestOp.READ) == 2
        assert rec.count() == 3

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            LatencyRecorder().add(RequestOp.READ, -1.0)

    def test_summary_has_every_class_and_all(self):
        rec = LatencyRecorder()
        rec.add(RequestOp.TRIM, 5.0)
        summary = rec.summary()
        assert set(summary) == {op.value for op in RequestOp} | {"all"}
        for stats in summary.values():
            assert set(stats) == {
                "count", "mean_us", "min_us", "max_us"
            } | {label for label, _ in PERCENTILES}

    def test_summary_values(self):
        rec = LatencyRecorder()
        for v in (10.0, 20.0, 30.0, 40.0):
            rec.add(RequestOp.READ, v)
        stats = rec.summary_for(RequestOp.READ)
        assert stats["count"] == 4.0
        assert stats["mean_us"] == 25.0
        assert stats["min_us"] == 10.0
        assert stats["max_us"] == 40.0
        assert stats["p50_us"] == 20.0  # nearest rank ceil(0.5 * 4) - 1 = 1

    def test_empty_class_is_all_zeros(self):
        stats = LatencyRecorder().summary_for(RequestOp.WRITE)
        assert all(v == 0.0 for v in stats.values())

    def test_all_merges_every_class(self):
        rec = LatencyRecorder()
        rec.add(RequestOp.READ, 1.0)
        rec.add(RequestOp.WRITE, 3.0)
        stats = rec.summary_for(None)
        assert stats["count"] == 2.0
        assert stats["mean_us"] == 2.0


class TestDepthSeries:
    def test_coalesces_consecutive_same_level(self):
        series = DepthSeries()
        series.record(0.0, 1)
        series.record(5.0, 1)  # no-op
        series.record(9.0, 2)
        assert series.times_us == [0.0, 9.0]
        assert series.levels == [1, 2]

    def test_same_instant_transition_keeps_final_level(self):
        series = DepthSeries()
        series.record(0.0, 1)
        series.record(4.0, 2)
        series.record(4.0, 3)  # overwrite, not append
        assert series.times_us == [0.0, 4.0]
        assert series.levels == [1, 3]

    def test_same_instant_overwrite_recoalesces(self):
        series = DepthSeries()
        series.record(0.0, 1)
        series.record(4.0, 2)
        series.record(4.0, 1)  # back to the previous level: point vanishes
        assert series.times_us == [0.0]
        assert series.levels == [1]

    def test_peak(self):
        series = DepthSeries()
        assert series.peak == 0
        series.record(0.0, 3)
        series.record(1.0, 7)
        series.record(2.0, 2)
        assert series.peak == 7

    def test_mean_level_time_weighted(self):
        series = DepthSeries()
        series.record(0.0, 2)   # level 2 over [0, 10)
        series.record(10.0, 4)  # level 4 over [10, 20)
        assert series.mean_level(20.0) == pytest.approx(3.0)

    def test_mean_level_empty_or_zero_window(self):
        assert DepthSeries().mean_level(10.0) == 0.0
        series = DepthSeries()
        series.record(0.0, 5)
        assert series.mean_level(0.0) == 0.0

    def test_downsample_preserves_endpoints(self):
        series = DepthSeries()
        for i in range(100):
            series.record(float(i), i % 2 + (i // 2) * 2)  # always changes
        picked = series.downsample(max_points=10)
        assert len(picked) == 10
        assert picked[0] == (series.times_us[0], series.levels[0])
        assert picked[-1] == (series.times_us[-1], series.levels[-1])

    def test_downsample_short_series_unchanged(self):
        series = DepthSeries()
        series.record(0.0, 1)
        series.record(1.0, 2)
        assert series.downsample(max_points=256) == [(0.0, 1), (1.0, 2)]

    def test_downsample_needs_two_points(self):
        with pytest.raises(ValueError, match="max_points"):
            DepthSeries().downsample(max_points=1)
