"""Engine sanitization-backlog accounting (tag-based attribution)."""

from __future__ import annotations

import pytest

from repro.sim import ClosedLoopArrivals, DeferLocksPolicy, simulate_workload


def _run(tiny_config, variant, policy="fifo"):
    return simulate_workload(
        tiny_config,
        "MailServer",
        variant,
        policy=policy,
        arrivals=ClosedLoopArrivals(queue_depth=32),
        checked=False,
    ).report


class TestBacklogAttribution:
    def test_baseline_has_no_sanitization_backlog(self, tiny_config):
        # baseline never enters a sanitize_region and issues no lock or
        # scrub pulses: plain host I/O and capacity-reclamation GC must
        # not register as sanitization work
        report = _run(tiny_config, "baseline")
        assert report.sanitize_backlog_peak_us == 0.0
        assert report.sanitize_backlog_mean_us == 0.0

    @pytest.mark.parametrize("variant", ("erSSD", "scrSSD", "secSSD"))
    def test_sanitizing_variants_accumulate_backlog(self, tiny_config, variant):
        report = _run(tiny_config, variant)
        assert report.sanitize_backlog_peak_us > 0.0
        assert report.sanitize_backlog_mean_us > 0.0

    @pytest.mark.parametrize("variant", ("baseline", "erSSD", "secSSD"))
    def test_backlog_fully_drains_at_quiescence(self, tiny_config, variant):
        report = _run(tiny_config, variant)
        if report.sanitize_backlog:
            assert report.sanitize_backlog[-1][1] == pytest.approx(0.0, abs=1e-6)

    def test_drains_even_with_deferred_locks(self, tiny_config):
        # deferred lock pulses sever their request link; the segment tag
        # must still decrement the backlog when the pulse finally runs
        report = _run(
            tiny_config, "secSSD", policy=DeferLocksPolicy(max_pending=8)
        )
        assert report.deferred_lock_pulses > 0
        assert report.sanitize_backlog_peak_us > 0.0
        assert report.sanitize_backlog[-1][1] == pytest.approx(0.0, abs=1e-6)

    def test_erssd_relocation_storms_dominate_secssd_locks(self, tiny_config):
        er = _run(tiny_config, "erSSD")
        sec = _run(tiny_config, "secSSD")
        assert sec.sanitize_backlog_peak_us < er.sanitize_backlog_peak_us

    def test_backlog_serialized_in_report_dict(self, tiny_config):
        payload = _run(tiny_config, "secSSD").to_dict()
        assert "sanitize_backlog" in payload
        assert payload["sanitize_backlog_peak_us"] > 0.0
