"""Discrete-event queueing engine tests."""
