"""The queueing engine end to end: determinism, edge cases, faults."""

import pytest

from repro.faults import FaultKind, FaultPlan
from repro.sim import (
    ClosedLoopArrivals,
    DeferLocksPolicy,
    FifoPolicy,
    PoissonArrivals,
    QueueingEngine,
    ReadPriorityPolicy,
    RecordingTiming,
    SuspendPolicy,
    capture_block_trace,
    simulate_workload,
)
from repro.ssd.device import SSD
from repro.ssd.request import IoRequest, RequestOp


def _engine(config, requests, policy=None, queue_depth=8):
    ssd = SSD(config, "baseline", seed=1, checked=False)
    ssd.instrument_timing(RecordingTiming.from_config(config))
    return QueueingEngine(
        ssd, requests, ClosedLoopArrivals(queue_depth), policy or FifoPolicy()
    )


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, tiny_config):
        kwargs = dict(
            workload="Mobile", variant="secSSD", seed=5,
            write_multiplier=0.5, policy="defer",
            arrivals=ClosedLoopArrivals(16), checked=False,
        )
        first = simulate_workload(tiny_config, **kwargs)
        second = simulate_workload(tiny_config, **kwargs)
        assert first.to_json() == second.to_json()
        assert first.report.to_json() == second.report.to_json()

    def test_different_seed_differs(self, tiny_config):
        runs = [
            simulate_workload(
                tiny_config, "Mobile", "baseline", seed=seed,
                write_multiplier=0.5, checked=False,
            )
            for seed in (1, 2)
        ]
        assert runs[0].report.to_json() != runs[1].report.to_json()


class TestEdgeCases:
    def test_empty_workload(self, tiny_config):
        report = _engine(tiny_config, []).run()
        assert report.completed == 0
        assert report.sim_elapsed_us == 0.0
        assert report.iops == 0.0
        assert report.open_loop_agreement == 0.0
        assert report.latency["all"]["count"] == 0.0
        assert all(u == 0.0 for u in report.utilization.values())

    def test_zero_op_requests_complete_instantly(self, tiny_config):
        # reads of never-written pages touch no flash: latency 0, done at t=0
        requests = [IoRequest(RequestOp.READ, lpa) for lpa in range(4)]
        report = _engine(tiny_config, requests).run()
        assert report.completed == 4
        assert report.sim_elapsed_us == 0.0
        assert report.latency["read"]["count"] == 4.0
        assert report.latency["read"]["max_us"] == 0.0

    def test_single_chip_device(self):
        from repro.ssd.config import scaled_config

        config = scaled_config(
            blocks_per_chip=32, wordlines_per_block=16,
            n_channels=1, chips_per_channel=1,
        )
        result = simulate_workload(
            config, "Mobile", "baseline", write_multiplier=0.5, checked=False,
        )
        assert result.report.completed == result.requests
        assert set(result.report.utilization) == {"chip0", "chan0"}
        assert result.report.utilization["chip0"] > 0.0

    def test_requires_recording_timing(self, tiny_config):
        ssd = SSD(tiny_config, "baseline", checked=False)
        with pytest.raises(TypeError, match="RecordingTiming"):
            QueueingEngine(ssd, [], ClosedLoopArrivals(), FifoPolicy())

    def test_steady_start_validated(self, tiny_config):
        ssd = SSD(tiny_config, "baseline", checked=False)
        ssd.instrument_timing(RecordingTiming.from_config(tiny_config))
        with pytest.raises(ValueError, match="steady_start"):
            QueueingEngine(
                ssd, [], ClosedLoopArrivals(), FifoPolicy(), steady_start=1
            )

    def test_closed_loop_respects_queue_depth(self, tiny_config):
        requests, _ = capture_block_trace(
            tiny_config, "Mobile", write_multiplier=0.25
        )
        report = _engine(tiny_config, requests, queue_depth=4).run()
        assert report.completed == len(requests)
        assert report.in_flight_peak <= 4
        assert 0.0 < report.mean_in_flight <= 4.0

    def test_open_arrivals_complete_everything(self, tiny_config):
        result = simulate_workload(
            tiny_config, "Mobile", "baseline", write_multiplier=0.25,
            arrivals=PoissonArrivals(rate_iops=2_000, seed=4), checked=False,
        )
        assert result.report.completed == result.requests
        # open arrivals are not gated on completions
        assert result.report.in_flight_peak > 0


class TestFaultInjection:
    def test_mid_run_fault_window(self, tiny_config):
        plan = FaultPlan(
            seed=9,
            rates=((FaultKind.PROGRAM_FAIL, 0.02),),
            active_from=200,
            active_until=2_000,
        )
        kwargs = dict(
            workload="Mobile", variant="baseline", seed=3,
            write_multiplier=0.5, checked=False, faults=plan,
        )
        faulty = simulate_workload(tiny_config, **kwargs)
        assert faulty.report.completed == faulty.requests
        assert faulty.run.stats.program_fails > 0
        # fault decisions come from the plan's own RNG: still deterministic
        again = simulate_workload(tiny_config, **kwargs)
        assert faulty.to_json() == again.to_json()

    def test_faults_change_the_schedule(self, tiny_config):
        clean = simulate_workload(
            tiny_config, "Mobile", "baseline", seed=3,
            write_multiplier=0.5, checked=False,
        )
        faulty = simulate_workload(
            tiny_config, "Mobile", "baseline", seed=3,
            write_multiplier=0.5, checked=False,
            faults=FaultPlan(seed=9, rates=((FaultKind.PROGRAM_FAIL, 0.02),)),
        )
        # retried programs add flash work, so the makespan moves
        assert faulty.report.sim_elapsed_us != clean.report.sim_elapsed_us


class TestSuspension:
    def test_suspend_policy_pauses_erases_for_reads(self, tiny_config):
        suspended = simulate_workload(
            tiny_config, "MailServer", "erSSD", write_multiplier=0.5,
            policy=SuspendPolicy(), checked=False,
        )
        assert suspended.report.suspensions > 0
        plain = simulate_workload(
            tiny_config, "MailServer", "erSSD", write_multiplier=0.5,
            policy=ReadPriorityPolicy(), checked=False,
        )
        assert plain.report.suspensions == 0
        # getting out from behind 3.5-ms erases must shorten the read tail
        assert (
            suspended.report.latency["read"]["p99_us"]
            < plain.report.latency["read"]["p99_us"]
        )


class TestDeferral:
    def test_lock_pulses_deferred_and_drained(self, tiny_config):
        result = simulate_workload(
            tiny_config, "MailServer", "secSSD", write_multiplier=0.5,
            policy=DeferLocksPolicy(max_pending=8), checked=False,
        )
        report = result.report
        assert report.deferred_lock_pulses > 0
        assert report.lock_drains > 0
        # every deferred pulse is eventually served: the run-final drain
        # loop guarantees no pending locks survive, so chip busy time
        # includes them and the device still did all its sanitization
        assert result.run.stats.plocks > 0

    def test_deferral_checked_by_runtime_sanitizer(self, tiny_config):
        result = simulate_workload(
            tiny_config, "MailServer", "secSSD", write_multiplier=0.5,
            policy=DeferLocksPolicy(max_pending=8),
            checked=True, check_interval=17,
        )
        checker = result.report.checker
        assert checker["violations"] == 0
        assert checker["probes"] > 0
        assert result.report.deferred_lock_pulses > 0

    def test_fifo_policy_never_defers(self, tiny_config):
        result = simulate_workload(
            tiny_config, "MailServer", "secSSD", write_multiplier=0.25,
            policy="fifo", checked=False,
        )
        assert result.report.deferred_lock_pulses == 0
        assert result.report.lock_drains == 0
        assert result.report.suspensions == 0
