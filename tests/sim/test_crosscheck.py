"""The two contracts the ISSUE acceptance criteria pin down.

1. **Open-loop agreement**: under a saturating closed-loop load and the
   FIFO (in-order reservation) policy, the event engine's IOPS must
   match the open-loop occupancy model's IOPS within 5% -- for every
   FTL variant, on more than one workload.  ``RecordingTiming`` carries
   both answers through a single run, so the comparison has no
   request-order skew by construction.

2. **Tail-latency separation**: on a trim-heavy workload, secSSD under
   the sanitization-aware policy (defer + suspend) must beat erSSD's
   p99 host-read latency strictly, with the runtime sanitizer enabled
   and reporting zero unreadability violations while deferral is live.
"""

import pytest

from repro.sim import ClosedLoopArrivals, DeferLocksPolicy, simulate_workload

VARIANTS = ("baseline", "erSSD", "scrSSD", "secSSD")
WORKLOADS = ("Mobile", "MailServer")


class TestOpenLoopAgreement:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fifo_engine_matches_open_loop_iops(
        self, tiny_config, variant, workload
    ):
        result = simulate_workload(
            tiny_config,
            workload,
            variant,
            policy="fifo",
            arrivals=ClosedLoopArrivals(queue_depth=512),
            checked=False,
        )
        report = result.report
        assert report.completed == result.requests
        assert report.open_loop_iops > 0.0
        assert report.open_loop_agreement == pytest.approx(1.0, abs=0.05), (
            f"{variant}/{workload}: engine {report.iops:.0f} IOPS vs "
            f"open-loop {report.open_loop_iops:.0f} IOPS"
        )

    def test_agreement_degrades_when_unsaturated(self, tiny_config):
        # sanity check that the contract is not vacuous: slow open
        # arrivals leave the device idle between requests, so the engine
        # falls far behind the always-full open-loop schedule
        from repro.sim import PoissonArrivals

        result = simulate_workload(
            tiny_config, "Mobile", "baseline", policy="fifo",
            write_multiplier=0.25,
            arrivals=PoissonArrivals(rate_iops=50, seed=2), checked=False,
        )
        assert result.report.open_loop_agreement < 0.5


class TestTailLatencySeparation:
    def test_secssd_p99_read_beats_erssd_with_sanitizer_on(self, tiny_config):
        common = dict(
            workload="MailServer", seed=1,
            arrivals=ClosedLoopArrivals(queue_depth=32),
            checked=True, check_interval=50,
        )
        er = simulate_workload(
            tiny_config, variant="erSSD", policy="read_priority", **common
        )
        sec = simulate_workload(
            tiny_config, variant="secSSD",
            policy=DeferLocksPolicy(max_pending=8), **common
        )

        er_p99 = er.report.latency["read"]["p99_us"]
        sec_p99 = sec.report.latency["read"]["p99_us"]
        assert sec_p99 < er_p99, (
            f"secSSD p99 read {sec_p99:.0f}us not below erSSD {er_p99:.0f}us"
        )

        # the win must come with deferral actually active and the
        # runtime sanitizer proving no secured page was readable
        assert sec.report.deferred_lock_pulses > 0
        assert sec.report.checker["violations"] == 0
        assert sec.report.checker["probes"] > 0
