"""Event heap ordering and simulated clock invariants."""

import pytest

from repro.sim.events import Event, EventHeap, SimClock


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        heap.push(30.0, "a")
        heap.push(10.0, "b")
        heap.push(20.0, "c")
        assert [heap.pop().kind for _ in range(3)] == ["b", "c", "a"]

    def test_same_time_events_pop_in_push_order(self):
        heap = EventHeap()
        for i in range(50):
            heap.push(5.0, "tie", payload=i)
        assert [heap.pop().payload for _ in range(50)] == list(range(50))

    def test_tie_break_is_stable_across_interleaved_times(self):
        heap = EventHeap()
        heap.push(10.0, "first")
        heap.push(0.0, "early")
        heap.push(10.0, "second")
        heap.push(10.0, "third")
        kinds = [heap.pop().kind for _ in range(4)]
        assert kinds == ["early", "first", "second", "third"]

    def test_seq_assigned_monotonically(self):
        heap = EventHeap()
        a = heap.push(1.0, "a")
        b = heap.push(1.0, "b")
        assert isinstance(a, Event)
        assert b.seq == a.seq + 1

    def test_pushed_counts_all_events_ever(self):
        heap = EventHeap()
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        heap.pop()
        assert heap.pushed == 2
        assert len(heap) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventHeap().push(-1.0, "bad")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventHeap().pop()

    def test_next_time_us(self):
        heap = EventHeap()
        assert heap.next_time_us is None
        heap.push(7.0, "a")
        heap.push(3.0, "b")
        assert heap.next_time_us == 3.0

    def test_bool_and_len(self):
        heap = EventHeap()
        assert not heap
        heap.push(0.0, "a")
        assert heap and len(heap) == 1


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now_us == 0.0
        clock.advance_to(12.5)
        assert clock.now_us == 12.5

    def test_advance_to_same_time_is_fine(self):
        clock = SimClock()
        clock.advance_to(5.0)
        clock.advance_to(5.0)
        assert clock.now_us == 5.0

    def test_backwards_movement_raises(self):
        clock = SimClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.999)
