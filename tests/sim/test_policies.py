"""Scheduling policy semantics: priority, suspension, deferral."""

import pytest

from repro.sim.engine import Segment, _InFlight
from repro.sim.ops import OpKind
from repro.sim.policies import (
    POLICIES,
    DeferLocksPolicy,
    FifoPolicy,
    ReadPriorityPolicy,
    SchedulingPolicy,
    SuspendPolicy,
    is_host_read,
    policy_by_name,
)
from repro.ssd.request import RequestOp


def _segment(kind, stage="cell", op=RequestOp.READ, request=True):
    inflight = _InFlight(index=0, op=op, arrival_us=0.0) if request else None
    return Segment(kind, stage, 10.0, inflight)


class TestIsHostRead:
    def test_read_segment_of_read_request(self):
        assert is_host_read(_segment(OpKind.READ))

    def test_gc_relocation_read_is_background(self):
        # a READ captured while serving a WRITE request is GC relocation
        assert not is_host_read(_segment(OpKind.READ, op=RequestOp.WRITE))
        assert not is_host_read(_segment(OpKind.READ, op=RequestOp.TRIM))

    def test_non_read_kinds_are_background(self):
        for kind in (OpKind.PROGRAM, OpKind.ERASE, OpKind.PLOCK):
            assert not is_host_read(_segment(kind))

    def test_detached_segment_is_background(self):
        assert not is_host_read(_segment(OpKind.READ, request=False))


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {"fifo", "read_priority", "suspend", "defer"}
        for name in POLICIES:
            assert policy_by_name(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            policy_by_name("lifo")

    def test_describe_is_json_friendly(self):
        assert FifoPolicy().describe() == {"name": "fifo"}
        assert SuspendPolicy(resume_overhead_us=5.0).describe() == {
            "name": "suspend", "resume_overhead_us": 5.0,
        }
        assert DeferLocksPolicy(max_pending=8).describe() == {
            "name": "defer", "max_pending": 8, "resume_overhead_us": 20.0,
        }


class TestFifo:
    def test_everything_same_priority(self):
        policy = FifoPolicy()
        assert policy.priority(_segment(OpKind.READ)) == 0
        assert policy.priority(_segment(OpKind.ERASE)) == 0

    def test_in_order_reservation_mode(self):
        # the open-loop discipline: only FIFO reserves stages in order
        assert FifoPolicy().in_order
        assert not ReadPriorityPolicy().in_order
        assert not DeferLocksPolicy().in_order

    def test_never_preempts_or_defers(self):
        policy = FifoPolicy()
        assert not policy.preemptive
        assert not policy.defer_locks
        assert not policy.preempts(
            _segment(OpKind.READ), _segment(OpKind.ERASE)
        )


class TestReadPriority:
    def test_host_reads_first(self):
        policy = ReadPriorityPolicy()
        assert policy.priority(_segment(OpKind.READ)) == 0
        assert policy.priority(_segment(OpKind.READ, op=RequestOp.WRITE)) == 1
        assert policy.priority(_segment(OpKind.PROGRAM, op=RequestOp.WRITE)) == 1
        assert policy.priority(_segment(OpKind.PLOCK, op=RequestOp.TRIM)) == 1


class TestSuspend:
    def test_host_read_suspends_cell_erase_and_program(self):
        policy = SuspendPolicy()
        read = _segment(OpKind.READ, stage="cell")
        assert policy.preempts(read, _segment(OpKind.ERASE))
        assert policy.preempts(read, _segment(OpKind.PROGRAM, op=RequestOp.WRITE))

    def test_lock_pulses_are_never_suspendable(self):
        policy = SuspendPolicy()
        read = _segment(OpKind.READ, stage="cell")
        assert not policy.preempts(read, _segment(OpKind.PLOCK, op=RequestOp.TRIM))
        assert not policy.preempts(
            read, _segment(OpKind.BLOCK_LOCK, op=RequestOp.TRIM)
        )

    def test_only_host_reads_suspend(self):
        policy = SuspendPolicy()
        gc_read = _segment(OpKind.READ, op=RequestOp.WRITE)
        assert not policy.preempts(gc_read, _segment(OpKind.ERASE))

    def test_xfer_stages_do_not_suspend(self):
        policy = SuspendPolicy()
        xfer = _segment(OpKind.READ, stage="xfer")
        assert not policy.preempts(xfer, _segment(OpKind.ERASE))
        cell = _segment(OpKind.READ, stage="cell")
        assert not policy.preempts(
            cell, _segment(OpKind.PROGRAM, stage="xfer", op=RequestOp.WRITE)
        )

    def test_resume_overhead_validated(self):
        with pytest.raises(ValueError, match="resume_overhead_us"):
            SuspendPolicy(resume_overhead_us=-1.0)


class TestDeferLocks:
    def test_defers_exactly_the_lock_kinds(self):
        policy = DeferLocksPolicy()
        assert policy.defer_locks
        assert policy.defers(_segment(OpKind.PLOCK, op=RequestOp.TRIM))
        assert policy.defers(_segment(OpKind.BLOCK_LOCK, op=RequestOp.TRIM))
        assert not policy.defers(_segment(OpKind.ERASE, op=RequestOp.WRITE))
        assert not policy.defers(_segment(OpKind.SCRUB, op=RequestOp.TRIM))

    def test_drained_pulses_run_behind_host_traffic(self):
        policy = DeferLocksPolicy()
        host_read = policy.priority(_segment(OpKind.READ))
        background = policy.priority(_segment(OpKind.ERASE, op=RequestOp.WRITE))
        assert host_read < background < policy.DRAIN_PRIORITY

    def test_inherits_suspension(self):
        # secSSD GC erases reclaim already-sanitized blocks, so pausing
        # them for a host read is security-neutral
        policy = DeferLocksPolicy()
        assert policy.preemptive
        assert policy.preempts(
            _segment(OpKind.READ), _segment(OpKind.ERASE, op=RequestOp.WRITE)
        )

    def test_max_pending_validated(self):
        with pytest.raises(ValueError, match="max_pending"):
            DeferLocksPolicy(max_pending=0)


class TestBasePolicy:
    def test_base_defaults(self):
        policy = SchedulingPolicy()
        assert not policy.preemptive
        assert not policy.defer_locks
        assert not policy.in_order
        assert policy.resume_overhead_us == 0.0
        assert policy.describe() == {"name": "fifo"}
