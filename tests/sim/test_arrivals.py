"""Arrival processes: seeded determinism and parameter validation."""

import pytest

from repro.sim.arrivals import BurstyArrivals, ClosedLoopArrivals, PoissonArrivals


class TestClosedLoop:
    def test_is_closed_loop(self):
        arrivals = ClosedLoopArrivals(queue_depth=8)
        assert arrivals.closed_loop
        assert arrivals.queue_depth == 8

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError, match="queue_depth"):
            ClosedLoopArrivals(queue_depth=0)

    def test_describe(self):
        assert ClosedLoopArrivals(4).describe() == {
            "name": "closed", "queue_depth": 4,
        }

    def test_no_interarrival_source(self):
        with pytest.raises(NotImplementedError):
            ClosedLoopArrivals().interarrival_us()


class TestPoisson:
    def test_same_seed_same_sequence(self):
        a = PoissonArrivals(rate_iops=10_000, seed=7)
        b = PoissonArrivals(rate_iops=10_000, seed=7)
        assert [a.interarrival_us() for _ in range(100)] == [
            b.interarrival_us() for _ in range(100)
        ]

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate_iops=10_000, seed=1)
        b = PoissonArrivals(rate_iops=10_000, seed=2)
        assert [a.interarrival_us() for _ in range(10)] != [
            b.interarrival_us() for _ in range(10)
        ]

    def test_mean_matches_rate(self):
        arrivals = PoissonArrivals(rate_iops=5_000, seed=3)
        n = 20_000
        mean = sum(arrivals.interarrival_us() for _ in range(n)) / n
        assert mean == pytest.approx(200.0, rel=0.05)  # 1e6 / 5000

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate_iops"):
            PoissonArrivals(rate_iops=0.0)

    def test_describe(self):
        described = PoissonArrivals(rate_iops=100.0, seed=5).describe()
        assert described == {"name": "poisson", "rate_iops": 100.0}
        assert not PoissonArrivals(1.0).closed_loop


class TestBursty:
    def test_same_seed_same_sequence(self):
        a = BurstyArrivals(burst_rate_iops=50_000, seed=11)
        b = BurstyArrivals(burst_rate_iops=50_000, seed=11)
        assert [a.interarrival_us() for _ in range(200)] == [
            b.interarrival_us() for _ in range(200)
        ]

    def test_gaps_positive_and_carry_across_off_windows(self):
        arrivals = BurstyArrivals(
            burst_rate_iops=100_000, on_mean_us=200.0, off_mean_us=5_000.0,
            seed=2,
        )
        gaps = [arrivals.interarrival_us() for _ in range(500)]
        assert all(g > 0.0 for g in gaps)
        # short bursts + long silences: some gaps must span an OFF window
        assert max(gaps) > 1_000.0

    def test_validation(self):
        with pytest.raises(ValueError, match="burst_rate_iops"):
            BurstyArrivals(burst_rate_iops=-1.0)
        with pytest.raises(ValueError, match="period means"):
            BurstyArrivals(burst_rate_iops=1.0, on_mean_us=0.0)
        with pytest.raises(ValueError, match="period means"):
            BurstyArrivals(burst_rate_iops=1.0, off_mean_us=-5.0)

    def test_describe(self):
        described = BurstyArrivals(
            burst_rate_iops=1_000, on_mean_us=10.0, off_mean_us=20.0, seed=0
        ).describe()
        assert described == {
            "name": "bursty",
            "burst_rate_iops": 1_000,
            "on_mean_us": 10.0,
            "off_mean_us": 20.0,
        }
