"""Geometry and address arithmetic."""

import pytest

from repro.flash.errors import AddressError
from repro.flash.geometry import CellType, Geometry, PageRole, small_geometry


class TestCellType:
    def test_bits(self):
        assert int(CellType.SLC) == 1
        assert int(CellType.MLC) == 2
        assert int(CellType.TLC) == 3
        assert int(CellType.QLC) == 4

    def test_states(self):
        assert CellType.SLC.states == 2
        assert CellType.MLC.states == 4
        assert CellType.TLC.states == 8
        assert CellType.QLC.states == 16


class TestPageRole:
    def test_roles_for_tlc(self):
        roles = PageRole.for_cell_type(CellType.TLC)
        assert roles == (PageRole.LSB, PageRole.CSB, PageRole.MSB)

    def test_roles_for_slc(self):
        assert PageRole.for_cell_type(CellType.SLC) == (PageRole.LSB,)

    def test_roles_for_qlc(self):
        assert len(PageRole.for_cell_type(CellType.QLC)) == 4


class TestGeometryConstruction:
    def test_paper_chip_sizes(self):
        g = Geometry()  # Section 7 defaults
        assert g.blocks_per_chip == 428
        assert g.pages_per_block == 576
        assert g.wordlines_per_block == 192
        assert g.pages_per_wordline == 3
        assert g.page_size_bytes == 16 * 1024

    def test_paper_chip_capacity_about_4gib(self):
        g = Geometry()
        assert g.chip_bytes == 428 * 576 * 16 * 1024

    def test_rejects_nonpositive_blocks(self):
        with pytest.raises(ValueError):
            Geometry(blocks_per_chip=0)

    def test_rejects_nonpositive_wordlines(self):
        with pytest.raises(ValueError):
            Geometry(wordlines_per_block=-1)

    def test_rejects_unaligned_page_size(self):
        with pytest.raises(ValueError):
            Geometry(page_size_bytes=5000)

    def test_rejects_nonpositive_cells(self):
        with pytest.raises(ValueError):
            Geometry(cells_per_wordline=0)

    def test_small_geometry_helper(self):
        g = small_geometry(blocks=4, wordlines=2)
        assert g.blocks_per_chip == 4
        assert g.pages_per_block == 6


class TestAddressArithmetic:
    @pytest.fixture
    def geo(self):
        return small_geometry(blocks=4, wordlines=4)  # 12 pages/block

    def test_ppn_roundtrip(self, geo):
        for block in range(geo.blocks_per_chip):
            for offset in range(geo.pages_per_block):
                ppn = geo.ppn(block, offset)
                assert geo.split_ppn(ppn) == (block, offset)

    def test_ppn_is_flat_and_dense(self, geo):
        ppns = [
            geo.ppn(b, o)
            for b in range(geo.blocks_per_chip)
            for o in range(geo.pages_per_block)
        ]
        assert ppns == list(range(geo.pages_per_chip))

    def test_ppn_rejects_bad_block(self, geo):
        with pytest.raises(AddressError):
            geo.ppn(geo.blocks_per_chip, 0)

    def test_ppn_rejects_bad_offset(self, geo):
        with pytest.raises(AddressError):
            geo.ppn(0, geo.pages_per_block)

    def test_ppn_rejects_negative(self, geo):
        with pytest.raises(AddressError):
            geo.ppn(-1, 0)

    def test_split_rejects_out_of_range(self, geo):
        with pytest.raises(AddressError):
            geo.split_ppn(geo.pages_per_chip)

    def test_wordline_of_interleaved_layout(self, geo):
        # TLC: offsets 0,1,2 -> WL0; 3,4,5 -> WL1; ...
        assert geo.wordline_of(0) == 0
        assert geo.wordline_of(2) == 0
        assert geo.wordline_of(3) == 1
        assert geo.wordline_of(geo.pages_per_block - 1) == geo.wordlines_per_block - 1

    def test_role_of_cycles_through_pages(self, geo):
        assert geo.role_of(0) is PageRole.LSB
        assert geo.role_of(1) is PageRole.CSB
        assert geo.role_of(2) is PageRole.MSB
        assert geo.role_of(3) is PageRole.LSB

    def test_page_offset_inverse_of_role(self, geo):
        for wl in range(geo.wordlines_per_block):
            for role in PageRole.for_cell_type(geo.cell_type):
                off = geo.page_offset(wl, role)
                assert geo.wordline_of(off) == wl
                assert geo.role_of(off) is role

    def test_page_offset_rejects_bad_wordline(self, geo):
        with pytest.raises(AddressError):
            geo.page_offset(geo.wordlines_per_block, PageRole.LSB)

    def test_page_offset_rejects_role_too_high(self):
        geo = small_geometry(cell_type=CellType.MLC)
        with pytest.raises(AddressError):
            geo.page_offset(0, PageRole.MSB)  # MLC has only LSB/CSB slots

    def test_sibling_offsets(self, geo):
        assert geo.sibling_offsets(4) == (3, 4, 5)
        assert geo.sibling_offsets(3) == (3, 4, 5)

    def test_sibling_offsets_contains_self(self, geo):
        for off in range(geo.pages_per_block):
            assert off in geo.sibling_offsets(off)

    def test_slc_sibling_is_single(self):
        geo = small_geometry(cell_type=CellType.SLC)
        assert geo.sibling_offsets(0) == (0,)

    def test_check_block_and_ppn(self, geo):
        geo.check_block(0)
        geo.check_ppn(0)
        with pytest.raises(AddressError):
            geo.check_block(99)
        with pytest.raises(AddressError):
            geo.check_ppn(-1)
