"""One-shot reprogramming (OSR) -- the Figure 6 experiment."""

import pytest

from repro.flash.ecc import default_ecc
from repro.flash.geometry import CellType, PageRole
from repro.flash.mixture import WordlineMixture
from repro.flash.osr import (
    OsrConfig,
    default_pe_cycles,
    osr_study,
    sanitize_wordline_osr,
)
from repro.flash.vth import StressState, model_for


class TestOsrMechanics:
    def test_sanitized_page_becomes_unreadable(self):
        """After OSR, the target page's RBER explodes (data destroyed)."""
        model = model_for(CellType.MLC)
        mix = WordlineMixture.programmed(model, StressState())
        before = mix.rber(PageRole.LSB)
        sanitize_wordline_osr(mix, PageRole.LSB, overshoot=0.0, oneshot_sigma=0.35)
        after = mix.rber(PageRole.LSB)
        assert before < 0.01
        assert after > 0.10

    def test_valid_page_survives_nominal_pulse(self):
        """With zero overshoot, the sibling MSB page stays near-clean."""
        model = model_for(CellType.MLC)
        mix = WordlineMixture.programmed(model, StressState())
        sanitize_wordline_osr(mix, PageRole.LSB, overshoot=-0.4, oneshot_sigma=0.2)
        assert default_ecc().correctable_rber(mix.rber(PageRole.CSB))

    def test_overshoot_corrupts_valid_page(self):
        """Figure 5(b): excessive shift crosses the next reference."""
        model = model_for(CellType.MLC)
        mix = WordlineMixture.programmed(model, StressState())
        sanitize_wordline_osr(mix, PageRole.LSB, overshoot=1.0, oneshot_sigma=0.35)
        assert not default_ecc().correctable_rber(mix.rber(PageRole.CSB))

    def test_rejects_role_absent_from_cell_type(self):
        model = model_for(CellType.MLC)  # MLC wordlines have no MSB page slot
        mix = WordlineMixture.programmed(model, StressState())
        with pytest.raises(ValueError):
            sanitize_wordline_osr(mix, PageRole.MSB, 0.0, 0.35)


class TestOsrConfig:
    def test_per_cell_type_defaults(self):
        assert OsrConfig.for_cell_type(CellType.MLC) != OsrConfig.for_cell_type(
            CellType.TLC
        )

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            OsrConfig(oneshot_sigma=-1.0)

    def test_default_pe_cycles(self):
        """Figure 6 runs MLC at 3K P/E and TLC at 1K (endurance limits)."""
        assert default_pe_cycles(CellType.MLC) == 3000
        assert default_pe_cycles(CellType.TLC) == 1000


@pytest.fixture(scope="module")
def mlc_study():
    return osr_study(CellType.MLC, n_wordlines=300, seed=7)


@pytest.fixture(scope="module")
def tlc_study():
    return osr_study(CellType.TLC, n_wordlines=300, seed=7)


class TestFigure6MLC:
    def test_initial_pages_readable(self, mlc_study):
        assert mlc_study.fraction_exceeding_limit("initial") == 0.0

    def test_sanitize_fails_some_pages(self, mlc_study):
        """Paper: 7.4 % of MSB pages exceed the ECC limit after OSR."""
        frac = mlc_study.fraction_exceeding_limit("after_sanitize")
        assert 0.02 <= frac <= 0.15

    def test_retention_fails_most_pages(self, mlc_study):
        """Paper: after 1-year retention most MSB pages are unreadable."""
        assert mlc_study.fraction_exceeding_limit("after_retention") > 0.5

    def test_retention_reaches_1_5x_limit(self, mlc_study):
        assert mlc_study.box_stats("after_retention")["max"] > 1.5

    def test_conditions_ordered(self, mlc_study):
        med = [
            mlc_study.box_stats(c)["median"]
            for c in ("initial", "after_sanitize", "after_retention")
        ]
        assert med[0] < med[1] < med[2]


class TestFigure6TLC:
    def test_initial_pages_readable(self, tlc_study):
        assert tlc_study.fraction_exceeding_limit("initial") == 0.0

    def test_all_msb_pages_unreadable_after_sanitize(self, tlc_study):
        """Paper: sanitizing LSB+CSB makes *all* TLC MSB pages unreadable."""
        assert tlc_study.fraction_exceeding_limit("after_sanitize") == 1.0

    def test_all_unreadable_after_retention_too(self, tlc_study):
        assert tlc_study.fraction_exceeding_limit("after_retention") == 1.0

    def test_tlc_damage_exceeds_mlc(self, tlc_study, mlc_study):
        """Tighter TLC margins make OSR categorically worse (Section 4)."""
        assert (
            tlc_study.box_stats("after_sanitize")["median"]
            > mlc_study.box_stats("after_sanitize")["median"]
        )


class TestStudyPlumbing:
    def test_rejects_slc(self):
        with pytest.raises(ValueError):
            osr_study(CellType.SLC)

    def test_deterministic_given_seed(self):
        a = osr_study(CellType.MLC, n_wordlines=20, seed=3)
        b = osr_study(CellType.MLC, n_wordlines=20, seed=3)
        for cond in ("initial", "after_sanitize", "after_retention"):
            assert (a.normalized_rber[cond] == b.normalized_rber[cond]).all()

    def test_box_stats_keys(self, mlc_study):
        stats = mlc_study.box_stats("initial")
        assert set(stats) == {"min", "q1", "median", "q3", "max"}
        assert stats["min"] <= stats["median"] <= stats["max"]
