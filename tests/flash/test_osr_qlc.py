"""OSR on QLC: the paper's 'future MLC' extrapolation (Section 1).

"For future MLC flash memory, frequent reprogram operations may be
difficult to use in practice" -- at QLC densities the Vth margins are
roughly half of TLC's, so the one-shot pulse's fixed imprecision is
proportionally twice as destructive.
"""

import pytest

from repro.flash.geometry import CellType, PageRole
from repro.flash.osr import OsrConfig, default_pe_cycles, osr_study
from repro.flash.vth import StressState, model_for


class TestQlcBaseline:
    def test_qlc_endurance_point(self):
        assert default_pe_cycles(CellType.QLC) == 300

    def test_fresh_qlc_readable(self):
        model = model_for(CellType.QLC)
        stress = StressState(pe_cycles=300)
        worst = max(model.expected_rber_all_roles(stress).values())
        assert worst < 0.01  # below the ECC limit

    def test_qlc_config_exists(self):
        cfg = OsrConfig.for_cell_type(CellType.QLC)
        assert cfg.oneshot_sigma == OsrConfig.for_cell_type(CellType.TLC).oneshot_sigma


class TestQlcOsrStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return osr_study(CellType.QLC, n_wordlines=300, seed=3)

    def test_initial_readable(self, study):
        assert study.fraction_exceeding_limit("initial") == 0.0

    def test_overprogramming_reaches_the_distant_tsb_page(self, study):
        """The surviving TSB page's only read level sits several states
        above the reprogram targets, yet per-WL pulse variation still
        pushes some wordlines past the ECC limit -- at QLC margins there
        is no safe amount of overshoot."""
        assert study.box_stats("after_sanitize")["max"] > 1.0
        assert study.fraction_exceeding_limit("after_sanitize") > 0.0

    def test_retention_amplifies_the_damage(self, study):
        assert (
            study.box_stats("after_retention")["median"]
            > study.box_stats("after_sanitize")["median"]
        )

    def test_single_pulse_cannot_fully_destroy_the_target(self):
        """OSR's dirty secret at high densities: merging the erased state
        into its neighbour (Figure 5 semantics) leaves the target page's
        *upper* read levels intact, so an attacker retains a statistical
        advantage on the 'sanitized' data."""
        from repro.flash.mixture import WordlineMixture
        from repro.flash.osr import sanitize_wordline_osr
        from repro.flash.scrub import is_recoverable

        model = model_for(CellType.QLC)
        mix = WordlineMixture.programmed(model, StressState())
        sanitize_wordline_osr(mix, PageRole.LSB, overshoot=0.0, oneshot_sigma=0.2)
        assert is_recoverable(mix, PageRole.LSB)

    def test_tsb_is_the_surviving_role(self):
        """The study evaluates the top page (the only one not sanitized)."""
        roles = PageRole.for_cell_type(CellType.QLC)
        assert roles[-1] is PageRole.TSB
