"""Scrubbing physics: state merging destroys recoverability."""

import pytest

from repro.flash.geometry import CellType, PageRole
from repro.flash.mixture import WordlineMixture
from repro.flash.scrub import is_recoverable, page_read_entropy, scrub_wordline
from repro.flash.vth import StressState, model_for


@pytest.fixture
def mix():
    return WordlineMixture.programmed(model_for(CellType.TLC), StressState())


class TestScrubWordline:
    def test_all_components_merge(self, mix):
        scrub_wordline(mix)
        means = [c.mean for c in mix.components]
        assert max(means) - min(means) < 1e-9

    def test_custom_target(self, mix):
        scrub_wordline(mix, target_vth=4.0)
        assert all(c.mean == pytest.approx(4.0) for c in mix.components)

    def test_every_page_destroyed(self, mix):
        scrub_wordline(mix)
        for role in PageRole.for_cell_type(CellType.TLC):
            # bits no longer match original data beyond the trivial bias
            assert mix.rber(role) > 0.2


class TestRecoverability:
    def test_fresh_wordline_is_recoverable(self, mix):
        for role in PageRole.for_cell_type(CellType.TLC):
            assert is_recoverable(mix, role)

    def test_scrubbed_wordline_not_recoverable(self, mix):
        scrub_wordline(mix)
        for role in PageRole.for_cell_type(CellType.TLC):
            assert not is_recoverable(mix, role)

    def test_entropy_view(self, mix):
        before = page_read_entropy(mix, PageRole.LSB)
        scrub_wordline(mix)
        after = page_read_entropy(mix, PageRole.LSB)
        assert before > 0.99
        # raw match rate can stay above 0.5 (biased), but information is gone
        assert after < before

    def test_single_state_population_trivially_unrecoverable(self):
        import numpy as np

        model = model_for(CellType.TLC)
        pop = np.zeros(8)
        pop[3] = 1.0
        mix = WordlineMixture.programmed(model, StressState(), state_population=pop)
        # only one original state: reading gives no distinguishing power
        assert not is_recoverable(mix, PageRole.LSB)
