"""Behavioural flash chip: command set, stats, forensic dump."""

import pytest

from repro.flash.chip import ERASED_DATA, SCRUBBED_DATA, FlashChip
from repro.flash.errors import AddressError, ProgramOrderError
from repro.flash.geometry import small_geometry


@pytest.fixture
def chip():
    return FlashChip(small_geometry(blocks=4, wordlines=4))


class TestReadProgramErase:
    def test_read_erased_returns_all_ones_token(self, chip):
        result = chip.read_page(0)
        assert result.data == ERASED_DATA
        assert not result.blocked

    def test_program_then_read(self, chip):
        chip.program_page(0, "hello", {"lpa": 3})
        result = chip.read_page(0)
        assert result.data == "hello"
        assert result.spare == {"lpa": 3}

    def test_program_returns_latency(self, chip):
        assert chip.program_page(0, "x") == chip.t_prog_us

    def test_read_returns_latency(self, chip):
        assert chip.read_page(0).latency_us == chip.t_read_us

    def test_erase_destroys_data(self, chip):
        chip.program_page(0, "x")
        chip.erase_block(0)
        assert chip.read_page(0).data == ERASED_DATA

    def test_program_order_enforced_through_chip(self, chip):
        with pytest.raises(ProgramOrderError):
            chip.program_page(5, "x")

    def test_address_bounds(self, chip):
        with pytest.raises(AddressError):
            chip.read_page(chip.geometry.pages_per_chip)
        with pytest.raises(AddressError):
            chip.erase_block(99)


class TestStats:
    def test_counts(self, chip):
        chip.program_page(0, "x")
        chip.read_page(0)
        chip.read_page(1)
        chip.erase_block(0)
        assert chip.stats.programs == 1
        assert chip.stats.reads == 2
        assert chip.stats.erases == 1

    def test_busy_time_accumulates(self, chip):
        chip.program_page(0, "x")
        chip.read_page(0)
        expected = chip.t_prog_us + chip.t_read_us
        assert chip.stats.busy_time_us == pytest.approx(expected)

    def test_snapshot_keys(self, chip):
        snap = chip.stats.snapshot()
        assert {"reads", "programs", "erases", "plocks"} <= set(snap)


class TestHelpers:
    def test_next_programmable_page(self, chip):
        assert chip.next_programmable_page(0) == 0
        chip.program_page(0, "x")
        assert chip.next_programmable_page(0) == 1

    def test_next_programmable_none_when_full(self, chip):
        for offset in range(chip.geometry.pages_per_block):
            chip.program_page(offset, "x")
        assert chip.next_programmable_page(0) is None

    def test_free_blocks(self, chip):
        assert chip.free_blocks() == [0, 1, 2, 3]
        chip.program_page(0, "x")
        assert chip.free_blocks() == [1, 2, 3]


class TestRawDump:
    def test_dump_contains_programmed_pages(self, chip):
        chip.program_page(0, "a")
        chip.program_page(1, "b")
        dump = chip.raw_dump()
        assert dump == {0: "a", 1: "b"}

    def test_dump_excludes_erased(self, chip):
        chip.program_page(0, "a")
        chip.erase_block(0)
        assert chip.raw_dump() == {}

    def test_dump_exposes_stale_data(self, chip):
        """The core vulnerability: logically-dead data is readable raw."""
        chip.program_page(0, "secret-v1")
        chip.program_page(1, "secret-v2")
        # no FTL-level notion here: both versions visible to the attacker
        assert set(chip.raw_dump().values()) == {"secret-v1", "secret-v2"}


class TestScrub:
    def test_scrub_destroys_wordline(self, chip):
        for offset in range(3):
            chip.program_page(offset, f"d{offset}")
        chip.scrub_wordline(0, 0)
        for offset in range(3):
            assert chip.read_page(offset).data == SCRUBBED_DATA

    def test_scrub_leaves_other_wordlines(self, chip):
        for offset in range(6):
            chip.program_page(offset, f"d{offset}")
        chip.scrub_wordline(0, 0)
        assert chip.read_page(3).data == "d3"

    def test_scrub_skips_erased_pages(self, chip):
        chip.program_page(0, "x")
        chip.scrub_wordline(0, 1)  # untouched WL
        assert chip.read_page(3).data == ERASED_DATA

    def test_scrub_bad_wordline(self, chip):
        with pytest.raises(AddressError):
            chip.scrub_wordline(0, 99)

    def test_scrubbed_page_gone_from_dump(self, chip):
        chip.program_page(0, "secret")
        chip.scrub_wordline(0, 0)
        assert "secret" not in chip.raw_dump().values()
