"""Paper constants: the Section 7 configuration is encoded correctly."""

from repro.flash import constants


class TestTimingConstants:
    def test_section7_timings(self):
        """tREAD=80us, tPROG=700us, tBERS=3.5ms, tpLock=100us, tbLock=300us."""
        assert constants.T_READ_US == 80.0
        assert constants.T_PROG_US == 700.0
        assert constants.T_BERS_US == 3500.0
        assert constants.T_PLOCK_US == 100.0
        assert constants.T_BLOCK_LOCK_US == 300.0

    def test_lock_latencies_small_relative_to_ops(self):
        """Section 5.5's latency-overhead claims follow from the constants."""
        assert constants.T_PLOCK_US / constants.T_PROG_US <= 0.143
        assert constants.T_BLOCK_LOCK_US / constants.T_BERS_US <= 0.086

    def test_block_lock_breakeven_is_four_pages(self):
        """Section 6's policy: n x tpLock > tbLock first holds at n = 4."""
        n = 1
        while n * constants.T_PLOCK_US <= constants.T_BLOCK_LOCK_US:
            n += 1
        assert n == 4


class TestDesignSpaceConstants:
    def test_plock_grid_shape(self):
        assert constants.PLOCK_VPGM_COUNT == 5
        assert len(constants.PLOCK_LATENCIES_US) == 3
        assert constants.PLOCK_VPGM_STEP == 0.5  # "Vp(i+1) - Vp(i) = 0.5V"

    def test_block_grid_shape(self):
        assert constants.BLOCK_VPGM_COUNT == 6
        assert len(constants.BLOCK_LATENCIES_US) == 3
        assert constants.BLOCK_VPGM_STEP == 1.0  # "Vb(i+1) - Vb(i) = 1.0V"

    def test_final_latencies_in_their_grids(self):
        assert constants.T_PLOCK_US in constants.PLOCK_LATENCIES_US
        assert constants.T_BLOCK_LOCK_US in constants.BLOCK_LATENCIES_US


class TestReliabilityConstants:
    def test_endurance_ordering(self):
        """Section 2.1: MLC ~3K cycles, TLC ~1K."""
        assert constants.MLC_PE_LIMIT == 3000
        assert constants.TLC_PE_LIMIT == 1000

    def test_retention_requirements(self):
        assert constants.RETENTION_1Y_DAYS == 365.0
        assert constants.RETENTION_5Y_DAYS == 5 * 365.0

    def test_redundancy_is_odd(self):
        assert constants.PAP_REDUNDANCY_K == 9
        assert constants.PAP_REDUNDANCY_K % 2 == 1

    def test_logical_tick_is_4kib(self):
        assert constants.LOGICAL_TIME_WRITE_BYTES == 4096
