"""Seeded fault injection: plan validation, injector semantics, chip faults."""

import pytest

from repro.core.evanesco_chip import EvanescoChip
from repro.faults import OP_FAULTS, FaultInjector, FaultKind, FaultPlan
from repro.flash.chip import ERASED_DATA, FlashChip
from repro.flash.errors import (
    EraseFailError,
    PowerLossInjected,
    ProgramFailError,
    UncorrectableError,
)
from repro.flash.geometry import small_geometry


@pytest.fixture
def geometry():
    return small_geometry(blocks=4, wordlines=4)


def injector(**kwargs) -> FaultInjector:
    return FaultInjector(FaultPlan(**kwargs))


class TestFaultPlanValidation:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rates=((FaultKind.PROGRAM_FAIL, 1.5),))
        with pytest.raises(ValueError):
            FaultPlan(rates=((FaultKind.PROGRAM_FAIL, -0.1),))

    def test_rate_key_must_be_fault_kind(self):
        with pytest.raises(TypeError):
            FaultPlan(rates=(("program", 0.5),))

    def test_schedule_entry_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(schedule=((-1, FaultKind.ERASE_FAIL),))
        with pytest.raises(ValueError):
            FaultPlan(schedule=((3, "erase"),))

    def test_from_rates_is_order_independent(self):
        a = FaultPlan.from_rates(
            {FaultKind.PLOCK_FAIL: 0.1, FaultKind.ERASE_FAIL: 0.2}
        )
        b = FaultPlan.from_rates(
            {FaultKind.ERASE_FAIL: 0.2, FaultKind.PLOCK_FAIL: 0.1}
        )
        assert a == b

    def test_rate_of_unconfigured_kind_is_zero(self):
        plan = FaultPlan.single(FaultKind.READ_UNCORRECTABLE, 0.25)
        assert plan.rate_of(FaultKind.READ_UNCORRECTABLE) == 0.25
        assert plan.rate_of(FaultKind.ERASE_FAIL) == 0.0

    def test_describe_is_json_friendly(self):
        plan = FaultPlan(
            seed=7,
            rates=((FaultKind.PROGRAM_FAIL, 0.5),),
            schedule=((3, FaultKind.POWER_LOSS),),
        )
        assert plan.describe() == {
            "seed": 7,
            "rates": {"program": 0.5},
            "schedule": [[3, "power_loss"]],
        }

    def test_every_chip_op_has_a_fault_mapping(self):
        assert set(OP_FAULTS) == {
            "read", "program", "erase", "plock", "block_lock", "scrub"
        }
        assert OP_FAULTS["scrub"] is None  # scrub pulses cannot fail


class TestInjectorDeterminism:
    OPS = ["program", "read", "erase", "plock", "block_lock", "scrub"] * 40

    def test_same_plan_same_decisions(self):
        plan = FaultPlan.from_rates(
            {FaultKind.PROGRAM_FAIL: 0.3, FaultKind.READ_UNCORRECTABLE: 0.3},
            seed=11,
        )
        first = [FaultInjector(plan).on_op(op) for op in self.OPS]
        second = [FaultInjector(plan).on_op(op) for op in self.OPS]
        # regenerating per-op above resets state; replay on one instance too
        inj = FaultInjector(plan)
        third = [inj.on_op(op) for op in self.OPS]
        assert first == second
        assert "fail" in third  # the rates actually fire at 0.3

    def test_injected_counters_match_decisions(self):
        plan = FaultPlan.single(FaultKind.PROGRAM_FAIL, 1.0, seed=2)
        inj = FaultInjector(plan)
        decisions = [inj.on_op("program") for _ in range(5)]
        assert decisions == ["fail"] * 5
        assert inj.injected == {FaultKind.PROGRAM_FAIL: 5}
        assert inj.total_injected == 5

    def test_rate_only_applies_to_matching_op(self):
        plan = FaultPlan.single(FaultKind.ERASE_FAIL, 1.0)
        inj = FaultInjector(plan)
        assert inj.on_op("program") == ""
        assert inj.on_op("read") == ""
        assert inj.on_op("erase") == "fail"


class TestInjectorSchedule:
    def test_schedule_fires_at_exact_index(self):
        inj = FaultInjector(
            FaultPlan(schedule=((2, FaultKind.PROGRAM_FAIL),))
        )
        assert [inj.on_op("program") for _ in range(4)] == [
            "", "", "fail", ""
        ]

    def test_scheduled_kind_must_match_the_op(self):
        inj = FaultInjector(
            FaultPlan(schedule=((0, FaultKind.ERASE_FAIL),))
        )
        # op 0 is a program: the scheduled erase fault cannot fire on it
        assert inj.on_op("program") == ""
        assert inj.injected == {}

    def test_power_loss_cuts_any_op(self):
        inj = FaultInjector(FaultPlan.power_loss_at(1))
        assert inj.on_op("scrub") == ""
        assert inj.on_op("scrub") == "power-loss"

    def test_tripped_injector_is_inert(self):
        inj = FaultInjector(FaultPlan.power_loss_at(0))
        assert inj.on_op("program") == "power-loss"
        index = inj.op_index
        assert inj.on_op("program") == ""
        assert inj.op_index == index  # the device is "off": no counting
        assert inj.injected == {FaultKind.POWER_LOSS: 1}


class TestSuspension:
    def test_suspended_probes_do_not_advance_or_inject(self):
        inj = FaultInjector(FaultPlan.single(FaultKind.READ_UNCORRECTABLE, 1.0))
        with inj.suspended():
            assert inj.on_op("read") == ""
        assert inj.op_index == 0
        assert inj.injected == {}
        assert inj.on_op("read") == "fail"  # normal ops still fault

    def test_suspension_nests(self):
        inj = FaultInjector(FaultPlan.single(FaultKind.READ_UNCORRECTABLE, 1.0))
        with inj.suspended():
            with inj.suspended():
                pass
            assert inj.on_op("read") == ""
        assert inj.on_op("read") == "fail"


class TestChipFaultSemantics:
    def test_program_fail_tears_the_page(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(schedule=((0, FaultKind.PROGRAM_FAIL),)),
        )
        with pytest.raises(ProgramFailError):
            chip.program_page(0, "secret")
        # the page is consumed mid-distribution: unreadable, not erased
        assert chip.stats.programs == 1
        with pytest.raises(UncorrectableError):
            chip.read_page(0)

    def test_scrub_clears_a_torn_page(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(schedule=((0, FaultKind.PROGRAM_FAIL),)),
        )
        with pytest.raises(ProgramFailError):
            chip.program_page(0, "secret")
        chip.scrub_wordline(0, 0)
        assert chip.read_page(0).data != "secret"  # scrubbed, readable again

    def test_erase_clears_a_torn_page(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(schedule=((0, FaultKind.PROGRAM_FAIL),)),
        )
        with pytest.raises(ProgramFailError):
            chip.program_page(0, "secret")
        chip.erase_block(0)
        assert chip.read_page(0).data == ERASED_DATA

    def test_erase_fail_leaves_data_intact(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(schedule=((1, FaultKind.ERASE_FAIL),)),
        )
        chip.program_page(0, "payload")
        with pytest.raises(EraseFailError):
            chip.erase_block(0)
        assert chip.read_page(0).data == "payload"

    def test_transient_read_failure_clears_on_retry(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(
                schedule=((1, FaultKind.READ_UNCORRECTABLE),)
            ),
        )
        chip.program_page(0, "payload")
        with pytest.raises(UncorrectableError) as excinfo:
            chip.read_page(0)
        assert excinfo.value.rber == 1.0
        assert chip.read_page(0).data == "payload"  # re-sense succeeds

    def test_power_loss_raises_before_the_op(self, geometry):
        chip = FlashChip(geometry, fault_hook=injector(schedule=((0, FaultKind.POWER_LOSS),)))
        with pytest.raises(PowerLossInjected):
            chip.erase_block(0)
        assert chip.stats.erases == 0

    def test_power_loss_during_program_still_tears(self, geometry):
        chip = FlashChip(
            geometry,
            fault_hook=injector(schedule=((0, FaultKind.POWER_LOSS),)),
        )
        with pytest.raises(PowerLossInjected):
            chip.program_page(0, "secret")
        chip.fault_hook = None
        with pytest.raises(UncorrectableError):
            chip.read_page(0)


class TestEvanescoChipFaultSemantics:
    def test_plock_fail_leaves_page_unlocked(self, geometry):
        chip = EvanescoChip(
            geometry,
            fault_hook=injector(schedule=((1, FaultKind.PLOCK_FAIL),)),
        )
        chip.program_page(0, "x")
        chip.plock(0)
        assert not chip.page_locked(0)  # no flag cell reached the state
        chip.plock(0)  # fault-free retry locks for real
        assert chip.page_locked(0)

    def test_block_lock_fail_leaves_block_unlocked(self, geometry):
        chip = EvanescoChip(
            geometry,
            fault_hook=injector(schedule=((1, FaultKind.BLOCK_LOCK_FAIL),)),
        )
        chip.program_page(0, "x")
        chip.block_lock(0)
        assert not chip.block_locked(0)
        chip.block_lock(0)
        assert chip.block_locked(0)

    def test_power_loss_at_plock_boundary(self, geometry):
        chip = EvanescoChip(
            geometry,
            fault_hook=injector(schedule=((1, FaultKind.POWER_LOSS),)),
        )
        chip.program_page(0, "x")
        with pytest.raises(PowerLossInjected):
            chip.plock(0)
        assert not chip.page_locked(0)

    def test_read_consults_the_hook_once(self, geometry):
        inj = injector()
        chip = EvanescoChip(geometry, fault_hook=inj)
        chip.program_page(0, "x")
        before = inj.op_index
        chip.read_page(0)
        assert inj.op_index == before + 1
