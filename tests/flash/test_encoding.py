"""Gray-code encodings and read-level derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.flash.encoding import Encoding, encoding_for
from repro.flash.geometry import CellType, PageRole

ALL_TYPES = [CellType.SLC, CellType.MLC, CellType.TLC, CellType.QLC]


class TestEncodingValidity:
    @pytest.mark.parametrize("cell_type", ALL_TYPES)
    def test_code_count(self, cell_type):
        enc = encoding_for(cell_type)
        assert len(enc.codes) == cell_type.states

    @pytest.mark.parametrize("cell_type", ALL_TYPES)
    def test_codes_distinct(self, cell_type):
        enc = encoding_for(cell_type)
        assert len(set(enc.codes)) == cell_type.states

    @pytest.mark.parametrize("cell_type", ALL_TYPES)
    def test_gray_adjacency(self, cell_type):
        enc = encoding_for(cell_type)
        for a, b in zip(enc.codes, enc.codes[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1

    @pytest.mark.parametrize("cell_type", ALL_TYPES)
    def test_erased_state_all_ones(self, cell_type):
        enc = encoding_for(cell_type)
        assert all(bit == 1 for bit in enc.codes[0])

    def test_cached_instances(self):
        assert encoding_for(CellType.TLC) is encoding_for(CellType.TLC)


class TestPaperFigure2:
    """The exact Figure 2 state maps."""

    def test_mlc_codes_match_figure_2a(self):
        enc = encoding_for(CellType.MLC)
        # paper lists (MSB, LSB): E=11, P1=10, P2=00, P3=01
        msb = [enc.bit_of_state(s, PageRole.CSB) for s in range(4)]
        lsb = [enc.bit_of_state(s, PageRole.LSB) for s in range(4)]
        assert msb == [1, 1, 0, 0]
        assert lsb == [1, 0, 0, 1]

    def test_tlc_codes_match_figure_2b(self):
        enc = encoding_for(CellType.TLC)
        # paper lists (MSB, CSB, LSB) for E..P7:
        expected = ["111", "110", "100", "000", "010", "011", "001", "101"]
        for state, code in enumerate(expected):
            msb, csb, lsb = (int(c) for c in code)
            assert enc.bit_of_state(state, PageRole.MSB) == msb
            assert enc.bit_of_state(state, PageRole.CSB) == csb
            assert enc.bit_of_state(state, PageRole.LSB) == lsb


class TestEncodingRejections:
    def test_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            Encoding(CellType.MLC, ((1, 1), (0, 1)))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Encoding(CellType.MLC, ((1, 1), (0, 1), (0, 1), (1, 0)))

    def test_rejects_non_gray(self):
        with pytest.raises(ValueError):
            Encoding(CellType.MLC, ((1, 1), (0, 0), (0, 1), (1, 0)))

    def test_rejects_wrong_erased_state(self):
        with pytest.raises(ValueError):
            Encoding(CellType.MLC, ((0, 1), (1, 1), (1, 0), (0, 0)))


class TestReadLevels:
    def test_slc_single_level(self):
        enc = encoding_for(CellType.SLC)
        assert enc.read_levels(PageRole.LSB) == (0,)

    def test_mlc_levels(self):
        enc = encoding_for(CellType.MLC)
        assert enc.read_levels(PageRole.LSB) == (0, 2)
        assert enc.read_levels(PageRole.CSB) == (1,)

    def test_tlc_level_partition(self):
        """Every inter-state boundary is sensed by exactly one page role."""
        enc = encoding_for(CellType.TLC)
        seen: list[int] = []
        for role in PageRole.for_cell_type(CellType.TLC):
            seen.extend(enc.read_levels(role))
        assert sorted(seen) == list(range(7))

    @pytest.mark.parametrize("cell_type", ALL_TYPES)
    def test_level_partition_generic(self, cell_type):
        enc = encoding_for(cell_type)
        seen: list[int] = []
        for role in PageRole.for_cell_type(cell_type):
            seen.extend(enc.read_levels(role))
        assert sorted(seen) == list(range(cell_type.states - 1))


class TestStateMapping:
    def test_state_for_bits_roundtrip(self):
        enc = encoding_for(CellType.TLC)
        for state, code in enumerate(enc.codes):
            assert enc.state_for_bits(code) == state

    def test_bits_table_shape(self):
        enc = encoding_for(CellType.TLC)
        table = enc.bits_table()
        assert table.shape == (8, 3)

    def test_states_array_for_pages_roundtrip(self):
        enc = encoding_for(CellType.TLC)
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(3, 100), dtype=np.uint8)
        states = enc.states_array_for_pages(bits)
        table = enc.bits_table()
        recovered = table[states].T
        assert np.array_equal(recovered, bits)

    def test_states_array_rejects_wrong_planes(self):
        enc = encoding_for(CellType.TLC)
        with pytest.raises(ValueError):
            enc.states_array_for_pages(np.zeros((2, 10), dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=7))
    def test_bit_of_state_matches_codes(self, state):
        enc = encoding_for(CellType.TLC)
        for role in PageRole.for_cell_type(CellType.TLC):
            assert enc.bit_of_state(state, role) == enc.codes[state][int(role)]
