"""Vth distribution engine: stress responses and RBER computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.geometry import CellType, PageRole
from repro.flash.vth import (
    StressState,
    VthParams,
    default_params,
    model_for,
)


@pytest.fixture(scope="module")
def tlc():
    return model_for(CellType.TLC)


@pytest.fixture(scope="module")
def mlc():
    return model_for(CellType.MLC)


class TestParams:
    @pytest.mark.parametrize(
        "cell_type", [CellType.SLC, CellType.MLC, CellType.TLC, CellType.QLC]
    )
    def test_defaults_valid(self, cell_type):
        p = default_params(cell_type)
        assert len(p.means) == cell_type.states
        assert len(p.read_refs) == cell_type.states - 1

    def test_means_strictly_increasing(self):
        p = default_params(CellType.TLC)
        assert all(a < b for a, b in zip(p.means, p.means[1:]))

    def test_refs_between_means(self):
        p = default_params(CellType.TLC)
        for i, ref in enumerate(p.read_refs):
            assert p.means[i] < ref < p.means[i + 1]

    def test_rejects_mismatched_sizes(self):
        good = default_params(CellType.MLC)
        with pytest.raises(ValueError):
            VthParams(
                cell_type=CellType.MLC,
                means=good.means[:-1] + (99.0,) * 2,  # wrong count
                sigmas=good.sigmas,
                read_refs=good.read_refs,
                pe_sigma_per_k=0.1,
                pe_erase_lift_per_k=0.1,
                retention_coef=0.1,
                retention_sigma_coef=0.1,
                disturb_lift_per_pulse=0.1,
                disturb_sigma_per_pulse=0.1,
                open_interval_lift_max=0.1,
                open_interval_tau_days=1.0,
                read_disturb_lift_per_10k=0.1,
            )

    def test_rejects_decreasing_means(self):
        good = default_params(CellType.MLC)
        with pytest.raises(ValueError):
            VthParams(
                cell_type=CellType.MLC,
                means=tuple(reversed(good.means)),
                sigmas=good.sigmas,
                read_refs=good.read_refs,
                pe_sigma_per_k=0.1,
                pe_erase_lift_per_k=0.1,
                retention_coef=0.1,
                retention_sigma_coef=0.1,
                disturb_lift_per_pulse=0.1,
                disturb_sigma_per_pulse=0.1,
                open_interval_lift_max=0.1,
                open_interval_tau_days=1.0,
                read_disturb_lift_per_10k=0.1,
            )


class TestStressState:
    def test_builders(self):
        s = StressState().with_pe(1000).with_retention(365.0).with_disturb(3)
        assert s.pe_cycles == 1000
        assert s.retention_days == 365.0
        assert s.disturb_pulses == 3

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StressState().pe_cycles = 5


class TestStressResponses:
    def test_pe_cycling_widens_sigmas(self, tlc):
        _, fresh = tlc.state_distributions(StressState())
        _, cycled = tlc.state_distributions(StressState(pe_cycles=1000))
        assert np.all(cycled > fresh)

    def test_pe_cycling_lifts_erase_state(self, tlc):
        fresh, _ = tlc.state_distributions(StressState())
        cycled, _ = tlc.state_distributions(StressState(pe_cycles=1000))
        assert cycled[0] > fresh[0]

    def test_retention_lowers_high_states(self, tlc):
        fresh, _ = tlc.state_distributions(StressState(pe_cycles=1000))
        aged, _ = tlc.state_distributions(
            StressState(pe_cycles=1000, retention_days=365)
        )
        assert aged[-1] < fresh[-1]

    def test_retention_hits_high_states_harder(self, tlc):
        fresh, _ = tlc.state_distributions(StressState())
        aged, _ = tlc.state_distributions(StressState(retention_days=365))
        drops = fresh - aged
        assert drops[-1] > drops[1] >= drops[0]

    def test_disturb_lifts_low_states(self, tlc):
        fresh, _ = tlc.state_distributions(StressState())
        disturbed, _ = tlc.state_distributions(StressState(disturb_pulses=4))
        lifts = disturbed - fresh
        assert lifts[0] > lifts[-1]
        assert lifts[0] > 0

    def test_open_interval_widens_relative(self, tlc):
        _, fresh = tlc.state_distributions(StressState())
        _, opened = tlc.state_distributions(StressState(open_interval_days=16.0))
        assert np.all(opened > fresh)

    def test_open_interval_saturates(self, tlc):
        _, s16 = tlc.state_distributions(StressState(open_interval_days=16.0))
        _, s160 = tlc.state_distributions(StressState(open_interval_days=160.0))
        assert np.allclose(s16, s160, rtol=0.02)

    def test_read_disturb_lifts_erase(self, tlc):
        fresh, _ = tlc.state_distributions(StressState())
        read, _ = tlc.state_distributions(StressState(read_disturb_count=50_000))
        assert read[0] > fresh[0]


class TestRegionProbabilities:
    def test_rows_sum_to_one(self, tlc):
        probs = tlc.region_probabilities(StressState(pe_cycles=1000))
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_diagonal_dominates_when_fresh(self, tlc):
        probs = tlc.region_probabilities(StressState())
        assert np.all(np.diag(probs) > 0.99)

    def test_errors_grow_with_stress(self, tlc):
        fresh = tlc.region_probabilities(StressState())
        aged = tlc.region_probabilities(
            StressState(pe_cycles=1000, retention_days=1825)
        )
        assert np.trace(aged) < np.trace(fresh)


class TestExpectedRber:
    def test_fresh_tlc_below_ecc_limit(self, tlc):
        for role in PageRole.for_cell_type(CellType.TLC):
            assert tlc.expected_rber(StressState(pe_cycles=1000), role) < 0.01

    def test_rber_monotone_in_pe(self, tlc):
        vals = [
            tlc.expected_rber(StressState(pe_cycles=c), PageRole.MSB)
            for c in (0, 500, 1000, 2000)
        ]
        assert vals == sorted(vals)

    def test_rber_monotone_in_retention(self, tlc):
        vals = [
            tlc.expected_rber(
                StressState(pe_cycles=1000, retention_days=d), PageRole.MSB
            )
            for d in (0, 30, 365, 1825)
        ]
        assert vals == sorted(vals)

    def test_csb_is_worst_tlc_role(self, tlc):
        """CSB senses 3 read levels (vs 2), so it collects the most errors."""
        rbers = tlc.expected_rber_all_roles(StressState(pe_cycles=1000))
        assert rbers[PageRole.CSB] == max(rbers.values())

    def test_custom_population_weighting(self, tlc):
        # all cells erased: no read level borders two states with equal
        # bits, but the E state sits far from every reference -> near zero
        pop = np.zeros(8)
        pop[0] = 1.0
        rber = tlc.expected_rber(StressState(), PageRole.LSB, state_population=pop)
        assert rber < 1e-6

    def test_rejects_empty_population(self, tlc):
        with pytest.raises(ValueError):
            tlc.expected_rber(
                StressState(), PageRole.LSB, state_population=np.zeros(8)
            )

    def test_mlc_fresh_cleaner_than_tlc(self, mlc, tlc):
        m = max(mlc.expected_rber_all_roles(StressState(pe_cycles=1000)).values())
        t = max(tlc.expected_rber_all_roles(StressState(pe_cycles=1000)).values())
        assert m < t


class TestSampledRber:
    def test_sampled_matches_expected(self, tlc, rng):
        stress = StressState(pe_cycles=1000, retention_days=365)
        states = rng.integers(0, 8, size=200_000)
        sampled = tlc.sampled_rber(states, stress, PageRole.CSB, rng)
        expected = tlc.expected_rber(stress, PageRole.CSB)
        assert sampled == pytest.approx(expected, rel=0.15)

    def test_read_states_digitizes(self, tlc):
        refs = tlc.params.read_refs
        vths = np.array([refs[0] - 1.0, refs[0] + 0.01, refs[-1] + 1.0])
        states = tlc.read_states(vths)
        assert states[0] == 0
        assert states[1] == 1
        assert states[2] == 7

    def test_sample_cells_centred_on_means(self, tlc, rng):
        means, _ = tlc.state_distributions(StressState())
        states = np.full(50_000, 3)
        vths = tlc.sample_cells(states, StressState(), rng)
        assert np.mean(vths) == pytest.approx(means[3], abs=0.01)


class TestHypothesisInvariants:
    @given(
        pe=st.integers(min_value=0, max_value=3000),
        days=st.floats(min_value=0, max_value=3650, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_rber_always_a_probability(self, pe, days):
        model = model_for(CellType.TLC)
        stress = StressState(pe_cycles=pe, retention_days=days)
        for role in PageRole.for_cell_type(CellType.TLC):
            rber = model.expected_rber(stress, role)
            assert 0.0 <= rber <= 1.0

    @given(days=st.floats(min_value=0.1, max_value=30, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_open_interval_never_helps(self, days):
        model = model_for(CellType.TLC)
        base = model.expected_rber(StressState(pe_cycles=1000), PageRole.CSB)
        opened = model.expected_rber(
            StressState(pe_cycles=1000, open_interval_days=days), PageRole.CSB
        )
        assert opened >= base
