"""ECC model."""

import numpy as np
import pytest

from repro.flash.constants import ECC_LIMIT_RBER
from repro.flash.ecc import EccModel, default_ecc


class TestEccModel:
    def test_default_limit_matches_constant(self):
        assert default_ecc().limit_rber == pytest.approx(ECC_LIMIT_RBER, rel=0.01)

    def test_codeword_bits(self):
        assert EccModel(codeword_bytes=1024).codeword_bits == 8192

    def test_correctable_rber_threshold(self):
        ecc = default_ecc()
        assert ecc.correctable_rber(ecc.limit_rber)
        assert not ecc.correctable_rber(ecc.limit_rber * 1.01)

    def test_normalized(self):
        ecc = default_ecc()
        assert ecc.normalized(ecc.limit_rber) == pytest.approx(1.0)
        assert ecc.normalized(0.0) == 0.0

    def test_correct_codeword_view(self):
        ecc = EccModel(correctable_bits=10)
        assert ecc.correct(np.array([0, 5, 10]))
        assert not ecc.correct(np.array([0, 11]))

    def test_codewords_per_page(self):
        ecc = EccModel(codeword_bytes=1024)
        assert ecc.codewords_per_page(16 * 1024) == 16

    def test_codewords_per_page_rejects_unaligned(self):
        with pytest.raises(ValueError):
            EccModel(codeword_bytes=1024).codewords_per_page(1000)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            EccModel(codeword_bytes=0)
        with pytest.raises(ValueError):
            EccModel(correctable_bits=-1)

    def test_zero_correction_ecc(self):
        ecc = EccModel(correctable_bits=0)
        assert ecc.limit_rber == 0.0
        assert ecc.correct(np.array([0]))
        assert not ecc.correct(np.array([1]))
