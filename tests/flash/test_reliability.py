"""Reliability sweeps (Figure 10 and supporting studies)."""

import pytest

from repro.flash.geometry import CellType
from repro.flash.reliability import (
    OPEN_INTERVAL_BINS,
    OPEN_INTERVAL_CONDITIONS,
    open_interval_penalty,
    open_interval_study,
    pe_cycling_study,
    program_disturb_study,
    retention_study,
)


@pytest.fixture(scope="module")
def study():
    return open_interval_study()


class TestOpenIntervalStudy:
    def test_point_count(self, study):
        assert len(study) == len(OPEN_INTERVAL_CONDITIONS) * len(OPEN_INTERVAL_BINS)

    def test_rber_monotone_in_interval(self, study):
        for cond in OPEN_INTERVAL_CONDITIONS:
            series = sorted(
                (p for p in study if p.condition == cond), key=lambda p: p.x_value
            )
            vals = [p.rber for p in series]
            assert vals == sorted(vals)

    def test_conditions_ordered_by_severity(self, study):
        by_cond = {
            cond: max(p.rber for p in study if p.condition == cond)
            for cond in OPEN_INTERVAL_CONDITIONS
        }
        fresh, cycled, aged = (by_cond[c] for c in OPEN_INTERVAL_CONDITIONS)
        assert fresh < cycled < aged

    def test_penalty_about_30_percent(self, study):
        """Paper: RBER ~30 % larger at the longest interval (Fig. 10)."""
        penalty = open_interval_penalty(study, "After P/E cycling")
        assert 0.15 <= penalty <= 0.50

    def test_worst_case_crosses_limit(self, study):
        aged = [p for p in study if p.condition == OPEN_INTERVAL_CONDITIONS[2]]
        assert max(p.normalized_rber for p in aged) > 1.0

    def test_penalty_requires_zero_point(self, study):
        with pytest.raises(ValueError):
            open_interval_penalty([], "After P/E cycling")


class TestRetentionStudy:
    def test_monotone(self):
        pts = retention_study()
        vals = [p.rber for p in sorted(pts, key=lambda p: p.x_value)]
        assert vals == sorted(vals)

    def test_normalization_consistent(self):
        pts = retention_study()
        for p in pts:
            assert p.normalized_rber == pytest.approx(p.rber / 0.010, rel=0.02)


class TestPeCyclingStudy:
    def test_monotone(self):
        pts = pe_cycling_study()
        vals = [p.rber for p in sorted(pts, key=lambda p: p.x_value)]
        assert vals == sorted(vals)

    def test_mlc_tolerates_more_cycles(self):
        """MLC at 3K should look no worse than TLC at 1K (Section 2.1)."""
        mlc = pe_cycling_study(CellType.MLC, cycles_grid=(3000,))
        tlc = pe_cycling_study(CellType.TLC, cycles_grid=(1000,))
        assert mlc[0].rber <= tlc[0].rber


class TestProgramDisturbStudy:
    def test_monotone_in_pulses(self):
        pts = program_disturb_study()
        vals = [p.rber for p in sorted(pts, key=lambda p: p.x_value)]
        assert vals == sorted(vals)

    def test_single_pulse_is_mild(self):
        """One pLock pulse must not push a wordline over the ECC limit."""
        pts = program_disturb_study(pulses_grid=(0, 1))
        zero, one = (p.normalized_rber for p in pts)
        assert one < 1.0
        assert one / zero < 1.10


class TestStressBucketCache:
    def test_shared_per_params(self):
        from repro.flash.reliability import bucket_cache_for
        from repro.flash.vth import model_for

        # two fresh models with identical calibration share one cache
        assert bucket_cache_for(model_for(CellType.TLC)) is bucket_cache_for(
            model_for(CellType.TLC)
        )
        assert bucket_cache_for(model_for(CellType.TLC)) is not bucket_cache_for(
            model_for(CellType.MLC)
        )

    def test_hit_accounting(self):
        from repro.flash.reliability import StressBucketCache
        from repro.flash.vth import StressState, model_for

        cache = StressBucketCache(model_for(CellType.TLC))
        s = StressState(pe_cycles=1000, retention_days=100.0)
        first = cache.worst_role_rber(s)
        assert (cache.hits, cache.misses) == (0, 1)
        # a nearby stress lands in the same bucket: no re-evaluation
        again = cache.worst_role_rber(StressState(pe_cycles=1010, retention_days=100.5))
        assert (cache.hits, cache.misses) == (1, 1)
        assert again == first

    def test_quantization_error_bound(self):
        """Bucketed answers stay within ~2% of the exact evaluation."""
        from repro.flash.reliability import StressBucketCache
        from repro.flash.vth import StressState, model_for

        model = model_for(CellType.TLC)
        cache = StressBucketCache(model)
        # off-center coordinates (deliberately not multiples of any quantum)
        stresses = [
            StressState(pe_cycles=987, retention_days=37.3),
            StressState(pe_cycles=1513, retention_days=401.7, disturb_pulses=2),
            StressState(pe_cycles=333, open_interval_days=2.71),
            StressState(pe_cycles=2049, retention_days=3.14,
                        open_interval_days=0.73, read_disturb_count=777),
        ]
        for s in stresses:
            exact = max(model.expected_rber_all_roles(s).values())
            bucketed = cache.worst_role_rber(s)
            assert bucketed == pytest.approx(exact, rel=0.02)

    def test_zero_stress_is_exact(self):
        from repro.flash.reliability import StressBucketCache
        from repro.flash.vth import StressState, model_for

        model = model_for(CellType.TLC)
        cache = StressBucketCache(model)
        assert cache.bucket_of(StressState()) == StressState()
        exact = max(model.expected_rber_all_roles(StressState()).values())
        assert cache.worst_role_rber(StressState()) == exact
