"""Page and block state machines: NAND ordering rules."""

import pytest

from repro.flash.block import Block, BlockState
from repro.flash.errors import EraseStateError, ProgramOrderError, WearOutError
from repro.flash.geometry import small_geometry
from repro.flash.page import Page, PageState


class TestPage:
    def test_starts_erased(self):
        page = Page()
        assert page.is_erased
        assert page.data is None

    def test_program_sets_fields(self):
        page = Page()
        page.program("payload", {"lpa": 7}, now=42.0)
        assert page.state is PageState.PROGRAMMED
        assert page.data == "payload"
        assert page.spare == {"lpa": 7}
        assert page.program_time == 42.0

    def test_erase_resets(self):
        page = Page()
        page.program("x", None, 0.0)
        page.erase()
        assert page.is_erased
        assert page.data is None
        assert page.spare == {}

    def test_program_with_none_spare(self):
        page = Page()
        page.program("x", None, 0.0)
        assert page.spare == {}


@pytest.fixture
def block():
    return Block(small_geometry(blocks=2, wordlines=4), index=0)


class TestBlockProgramOrder:
    def test_sequential_program_ok(self, block):
        for offset in range(block.geometry.pages_per_block):
            block.program(offset, f"d{offset}", None, 0.0)
        assert block.is_full
        assert block.state is BlockState.FULL

    def test_out_of_order_rejected(self, block):
        with pytest.raises(ProgramOrderError):
            block.program(1, "x", None, 0.0)

    def test_double_program_rejected(self, block):
        block.program(0, "x", None, 0.0)
        with pytest.raises(ProgramOrderError):
            block.program(0, "y", None, 0.0)

    def test_state_transitions(self, block):
        assert block.state is BlockState.FREE
        block.program(0, "x", None, 0.0)
        assert block.state is BlockState.OPEN

    def test_erase_pending_blocks_programs(self, block):
        block.program(0, "x", None, 0.0)
        block.mark_erase_pending()
        with pytest.raises(EraseStateError):
            block.program(1, "y", None, 0.0)


class TestBlockErase:
    def test_erase_resets_everything(self, block):
        for offset in range(3):
            block.program(offset, "x", None, 0.0)
        block.erase(now=10.0)
        assert block.state is BlockState.FREE
        assert block.next_page == 0
        assert block.erase_count == 1
        assert all(p.is_erased for p in block.pages)
        assert block.last_erase_time == 10.0

    def test_erase_allows_reprogramming(self, block):
        block.program(0, "x", None, 0.0)
        block.erase(0.0)
        block.program(0, "y", None, 0.0)
        assert block.pages[0].data == "y"

    def test_wear_out(self):
        block = Block(small_geometry(blocks=1, wordlines=1), index=0, pe_limit=2)
        block.erase(0.0)
        block.erase(0.0)
        with pytest.raises(WearOutError):
            block.erase(0.0)

    def test_erase_clears_disturb_counters(self, block):
        block.record_wl_disturb(0)
        block.erase(0.0)
        assert block.wl_disturb_pulses[0] == 0


class TestOpenInterval:
    def test_open_interval_counts_while_free(self, block):
        block.erase(now=100.0)
        assert block.open_interval_us(150.0) == pytest.approx(50.0)

    def test_open_interval_zero_once_programmed(self, block):
        block.erase(now=100.0)
        block.program(0, "x", None, 120.0)
        assert block.open_interval_us(500.0) == 0.0

    def test_open_interval_never_negative(self, block):
        block.erase(now=100.0)
        assert block.open_interval_us(50.0) == 0.0


class TestDisturbTracking:
    def test_record_wl_disturb(self, block):
        block.record_wl_disturb(2)
        block.record_wl_disturb(2)
        assert block.wl_disturb_pulses[2] == 2
        assert block.wl_disturb_pulses[0] == 0
