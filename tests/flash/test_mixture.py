"""Gaussian-mixture wordline populations."""

import numpy as np
import pytest

from repro.flash.geometry import CellType, PageRole
from repro.flash.mixture import Component, WordlineMixture
from repro.flash.vth import StressState, model_for


@pytest.fixture(scope="module")
def tlc():
    return model_for(CellType.TLC)


class TestComponent:
    def test_shifted_moves_mean(self):
        c = Component(0, 0.5, 1.0, 0.2)
        s = c.shifted(0.5, 0.0)
        assert s.mean == pytest.approx(1.5)
        assert s.sigma == pytest.approx(0.2)

    def test_shifted_adds_variance_in_quadrature(self):
        c = Component(0, 0.5, 1.0, 0.3)
        s = c.shifted(0.0, 0.4)
        assert s.sigma == pytest.approx(0.5)

    def test_shifted_preserves_identity(self):
        c = Component(3, 0.25, 1.0, 0.2)
        s = c.shifted(1.0, 0.1)
        assert s.original_state == 3
        assert s.weight == 0.25


class TestConstruction:
    def test_programmed_uniform(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState())
        assert len(mix.components) == 8
        assert sum(c.weight for c in mix.components) == pytest.approx(1.0)

    def test_programmed_with_population(self, tlc):
        pop = np.zeros(8)
        pop[0] = pop[7] = 1.0
        mix = WordlineMixture.programmed(tlc, StressState(), state_population=pop)
        assert len(mix.components) == 2
        assert {c.original_state for c in mix.components} == {0, 7}

    def test_rejects_bad_weights(self, tlc):
        with pytest.raises(ValueError):
            WordlineMixture(tlc, [Component(0, 0.5, 0.0, 0.1)])


class TestRber:
    def test_fresh_mixture_matches_model(self, tlc):
        stress = StressState(pe_cycles=1000)
        mix = WordlineMixture.programmed(tlc, stress)
        for role in PageRole.for_cell_type(CellType.TLC):
            assert mix.rber(role) == pytest.approx(
                tlc.expected_rber(stress, role), rel=1e-6
            )

    def test_region_mass_sums_to_one(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState())
        for c in mix.components:
            assert mix.region_mass(c).sum() == pytest.approx(1.0, abs=1e-9)

    def test_transform_destroys_page(self, tlc):
        """Merging E into P1 makes the LSB page unreadable at level 0."""
        mix = WordlineMixture.programmed(tlc, StressState())
        p1_mean = mix.components[1].mean
        mix.transform(
            lambda c: c.original_state == 0, p1_mean - mix.components[0].mean, 0.1
        )
        # every E cell now reads as P1: its LSB bit flips 1 -> 0
        assert mix.rber(PageRole.LSB) > 0.1


class TestRetention:
    def test_retention_moves_components_down(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState())
        before = [c.mean for c in mix.components]
        mix.apply_retention(365.0, pe_cycles=1000)
        after = [c.mean for c in mix.components]
        assert after[-1] < before[-1]

    def test_retention_widens(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState())
        before = [c.sigma for c in mix.components]
        mix.apply_retention(365.0)
        after = [c.sigma for c in mix.components]
        assert all(a > b for a, b in zip(after, before))

    def test_zero_days_is_noop(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState())
        before = list(mix.components)
        mix.apply_retention(0.0)
        assert mix.components == before

    def test_retention_increases_rber(self, tlc):
        mix = WordlineMixture.programmed(tlc, StressState(pe_cycles=1000))
        before = mix.rber(PageRole.CSB)
        mix.apply_retention(365.0, pe_cycles=1000)
        assert mix.rber(PageRole.CSB) > before


class TestSampling:
    def test_sample_distribution(self, tlc, rng):
        mix = WordlineMixture.programmed(tlc, StressState())
        orig, vths = mix.sample(50_000, rng)
        assert len(orig) == len(vths) == 50_000
        # state proportions approximately uniform
        counts = np.bincount(orig, minlength=8) / 50_000
        assert np.allclose(counts, 1 / 8, atol=0.01)

    def test_sampled_rber_matches_analytic(self, tlc, rng):
        mix = WordlineMixture.programmed(tlc, StressState(pe_cycles=1000))
        orig, vths = mix.sample(200_000, rng)
        read = tlc.read_states(vths)
        bits = tlc.encoding.bits_table()[:, 1]  # CSB
        sampled = float(np.mean(bits[orig] != bits[read]))
        assert sampled == pytest.approx(mix.rber(PageRole.CSB), rel=0.2)
